// Package fleet extends the paper's single-VM scheduler to the ROADMAP
// north star: N replicas behind a load balancer. A Controller maintains a
// demand-driven target replica count by spreading spot instances across
// the markets of a market.Set (per an allocation Strategy), falling back
// to on-demand capacity when no spot market is acceptable, and draining
// on-demand replicas back onto spot once a cheap market recovers
// (AutoSpotting-style reverse replacement). A mass revocation in one
// market shows up as a partial capacity shortfall instead of the
// single-VM binary up/down.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"spothost/internal/catalog"
	"spothost/internal/cloud"
	"spothost/internal/forecast"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Defaults for Config fields left zero.
const (
	DefaultTick              = 5 * sim.Minute
	DefaultBidMultiple       = 1.5
	DefaultMaxReplicas       = 64
	DefaultReverseHysteresis = 0.15
	// DefaultRebalanceHysteresis is deliberately much stiffer than the
	// reverse margin: a spot-to-spot move pays a full boot overlap, and a
	// market that undercuts by less rarely stays cheap long enough to
	// recoup it.
	DefaultRebalanceHysteresis = 0.45
	DefaultMaxReversePerTick   = 1
	DefaultVolatilityHalflife  = 12 * sim.Hour
)

// Config parameterizes a fleet controller.
type Config struct {
	// Markets are the candidate spot markets. Empty means every market of
	// the provider's set.
	Markets []market.ID
	// Strategy picks the spot market for each new replica.
	Strategy Strategy
	// Demand is the offered-load trace driving autoscaling.
	Demand Demand
	// Planner converts the load into a target replica count.
	Planner Planner
	// Tick is the autoscaling period. Zero means DefaultTick.
	Tick sim.Duration
	// BidMultiple sets each spot bid to BidMultiple x the market's
	// on-demand price (clamped to the provider's bid cap). Zero means
	// DefaultBidMultiple.
	BidMultiple float64
	// MinReplicas and MaxReplicas clamp the planner's target. Zeros mean
	// 1 and DefaultMaxReplicas.
	MinReplicas int
	MaxReplicas int
	// ReverseHysteresis is the discount a spot market must offer below an
	// on-demand replica's price before the controller drains that replica
	// onto spot. Zero means DefaultReverseHysteresis; negative disables
	// reverse replacement.
	ReverseHysteresis float64
	// RebalanceHysteresis is the per-unit discount another market must
	// offer below a live spot replica's current price before the
	// controller migrates it there (mixed-size catalog mode only). Zero
	// means DefaultRebalanceHysteresis; negative disables rebalancing.
	RebalanceHysteresis float64
	// MaxReversePerTick bounds reverse replacements started per tick.
	// Zero means DefaultMaxReversePerTick.
	MaxReversePerTick int
	// VolatilityHalflife is the decay half-life of the per-market price
	// moments fed to strategies. Zero means DefaultVolatilityHalflife.
	VolatilityHalflife sim.Duration
	// Catalog, when set, turns on heterogeneous placement: replicas may
	// be any catalog type at least as powerful as AnchorType
	// (catalog.Compatible), the Planner's target and all capacity
	// accounting are measured in capacity units (target x anchor units,
	// filled by mixed-size replicas) and strategies compare per-unit
	// prices. Nil preserves the legacy one-abstract-server-per-market
	// behaviour bit-for-bit.
	Catalog *catalog.Catalog
	// AnchorType is the reference instance type capacity is planned in:
	// the Planner's replica count is worth AnchorType's units each, and
	// every candidate market must be at least as powerful. Required with
	// Catalog; must not be set without it.
	AnchorType market.InstanceType
}

func (cfg Config) withDefaults() Config {
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.BidMultiple <= 0 {
		cfg.BidMultiple = DefaultBidMultiple
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 1
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = DefaultMaxReplicas
	}
	if cfg.ReverseHysteresis == 0 {
		cfg.ReverseHysteresis = DefaultReverseHysteresis
	}
	if cfg.RebalanceHysteresis == 0 {
		cfg.RebalanceHysteresis = DefaultRebalanceHysteresis
	}
	if cfg.MaxReversePerTick <= 0 {
		cfg.MaxReversePerTick = DefaultMaxReversePerTick
	}
	if cfg.VolatilityHalflife <= 0 {
		cfg.VolatilityHalflife = DefaultVolatilityHalflife
	}
	return cfg
}

// replica is one slot of the fleet: an instance plus its control state.
type replica struct {
	in   *cloud.Instance
	spot bool
	// doomed marks a spot replica that received a revocation warning; it
	// still serves until the deadline but no longer counts as durable
	// capacity, so a replacement launches immediately.
	doomed bool
	// replaces links a reverse-replacement spot replica to the on-demand
	// replica it will retire once booted; draining marks that on-demand
	// replica. A pending replacement does not count as capacity (its
	// draining partner still serves).
	replaces *replica
	draining bool
	// rebal marks a draining spot replica being migrated to a cheaper
	// market (as opposed to a downsize shrinking it), for accounting.
	rebal bool
	// span is the replica's open launch span when tracing is on (0
	// otherwise): request → running, or → never-granted.
	span trace.SpanID
	// units is the replica's capacity in anchor units (always 1 in
	// legacy mode); invUnits is the exact reciprocal used to normalize
	// its market prices.
	units    int
	invUnits float64
}

// Controller is the fleet controller. All methods must be called from
// inside the owning engine's event loop; construct with New and call
// Start before running the engine.
type Controller struct {
	eng     *sim.Engine
	prov    *cloud.Provider
	cfg     Config
	markets []market.ID // sorted by ID
	moments map[market.ID]*forecast.DecayingMoments

	started  bool
	target   int        // anchor-replica target from the Planner, clamped
	replicas []*replica // launch order == ascending instance ID

	// Capacity-unit view of the fleet. In legacy mode (no catalog) every
	// market and replica is worth exactly one unit, so targetUnits ==
	// target and all unit arithmetic multiplies by 1.0 — bit-identical
	// to the pre-catalog controller.
	anchorUnits int
	targetUnits int
	mixed       bool      // any configured market bigger than one unit
	mktUnits    []int     // per c.markets index: the type's units
	mktInv      []float64 // per c.markets index: exact 1/units
	mktIdx      map[market.ID]int

	// Hot-path caches: the shared cheapest-market envelope (only for
	// strategies whose pick it can reproduce exactly), the persistent tick
	// closure, and the cheapest on-demand market — precomputed at
	// construction since on-demand prices and the catalog are both fixed
	// for the controller's lifetime (a new catalog means a new
	// controller).
	envCur *market.EnvelopeCursor
	tickFn func()
	odBest market.ID

	// Tick-path scratch, reused across calls so building the strategy
	// input allocates nothing after the first tick (the candidate slice
	// scales with the catalog: 40 markets x every tick adds up). The
	// slice returned by candidates is valid only until the next call;
	// no caller retains it.
	candScratch []Candidate
	occScratch  map[market.ID]int

	// Time-integrated accounting, advanced before every state change.
	lastAccounted sim.Time
	targetSecs    float64
	servedSecs    float64
	spotSecs      float64
	odSecs        float64
	marketSecs    map[market.ID]*MarketUsage

	// Counters.
	launches     int
	spotLaunches int
	odFallbacks  int
	reverses     int
	downsizes    int
	rebalances   int
	lost         int
	neverGranted int
	scaleDowns   int
	peakTarget   int

	lossAt     map[sim.Time]int
	occupancy  []OccupancyPoint
	lastSample sim.Time

	// Decision-ledger scratch: the specialized launch paths (reverse,
	// rebalance, downsize, consolidation) stash the hysteresis margin or
	// note they cleared just before requesting capacity, and the request
	// records and clears it. Only ever written when telemetry is attached,
	// so the disabled path never touches these fields.
	obsMargin float64
	obsNote   string
}

// New validates the config and builds a controller over the provider.
func New(prov *cloud.Provider, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Strategy == nil:
		return nil, fmt.Errorf("fleet: nil strategy")
	case cfg.Demand == nil:
		return nil, fmt.Errorf("fleet: nil demand")
	case cfg.Planner == nil:
		return nil, fmt.Errorf("fleet: nil planner")
	case cfg.MinReplicas > cfg.MaxReplicas:
		return nil, fmt.Errorf("fleet: MinReplicas %d > MaxReplicas %d", cfg.MinReplicas, cfg.MaxReplicas)
	}
	var anchor catalog.Entry
	if cfg.Catalog != nil {
		if cfg.AnchorType == "" {
			return nil, fmt.Errorf("fleet: Catalog requires AnchorType")
		}
		var ok bool
		if anchor, ok = cfg.Catalog.Lookup(cfg.AnchorType); !ok {
			return nil, fmt.Errorf("fleet: unknown anchor instance type %q", cfg.AnchorType)
		}
	} else if cfg.AnchorType != "" {
		return nil, fmt.Errorf("fleet: AnchorType %q set without a Catalog", cfg.AnchorType)
	}
	ids := cfg.Markets
	if len(ids) == 0 {
		if cfg.Catalog != nil {
			var err error
			if ids, err = cfg.Catalog.CompatibleMarkets(prov.Markets(), cfg.AnchorType); err != nil {
				return nil, fmt.Errorf("fleet: %w", err)
			}
		} else {
			ids = prov.Markets().IDs()
		}
	} else if cfg.Catalog != nil {
		for _, id := range ids {
			e, ok := cfg.Catalog.Lookup(id.Type)
			if !ok {
				return nil, fmt.Errorf("fleet: market %s: unknown instance type %q", id, id.Type)
			}
			if !catalog.Compatible(anchor, e) {
				return nil, fmt.Errorf("fleet: market %s: type %q is weaker than anchor %q", id, id.Type, cfg.AnchorType)
			}
		}
	}
	sorted := append([]market.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	for _, id := range sorted {
		if prov.Markets().Trace(id) == nil {
			return nil, fmt.Errorf("fleet: market %s not in set", id)
		}
	}
	c := &Controller{
		eng:         prov.Engine(),
		prov:        prov,
		cfg:         cfg,
		markets:     sorted,
		moments:     map[market.ID]*forecast.DecayingMoments{},
		marketSecs:  map[market.ID]*MarketUsage{},
		lossAt:      map[sim.Time]int{},
		lastSample:  -sim.Hour,
		anchorUnits: 1,
	}
	c.mktUnits = make([]int, len(sorted))
	c.mktInv = make([]float64, len(sorted))
	c.mktIdx = make(map[market.ID]int, len(sorted))
	for i, id := range sorted {
		c.marketSecs[id] = &MarketUsage{}
		c.mktUnits[i], c.mktInv[i] = 1, 1
		if cfg.Catalog != nil {
			e, _ := cfg.Catalog.Lookup(id.Type) // validated above
			c.mktUnits[i], c.mktInv[i] = e.Units, e.InvUnits()
			if e.Units != 1 {
				c.mixed = true
			}
		}
		c.mktIdx[id] = i
	}
	if cfg.Catalog != nil {
		c.anchorUnits = anchor.Units
	}
	c.odBest = c.computeCheapestOnDemand()
	c.tickFn = c.tick
	if useEnvelope {
		switch cfg.Strategy.(type) {
		case LowestPrice, Diversified:
			// Both place at the first-index cheapest feasible market (by
			// per-unit price in catalog mode), which the precomputed
			// envelope yields in O(1) amortized; see fastPick for the
			// exact-equivalence argument. All-ones weights pass nil so a
			// single-unit catalog shares the legacy envelope memo entry.
			var weights []float64
			if c.mixed {
				weights = c.mktInv
			}
			if env := prov.Markets().Envelope(sorted, weights); env != nil {
				c.envCur = env.Cursor()
			}
		}
	}
	return c, nil
}

// useEnvelope gates the envelope fast path in fastPick; tests flip it off
// to prove the fast path places exactly like the full candidate scan.
var useEnvelope = true

// SetEnvelopeFastPath toggles the envelope fast path. It exists only so
// cross-package equivalence tests can render experiments against the
// reference candidate scan; production code leaves the fast path on.
// Not safe to flip while runs are in flight.
func SetEnvelopeFastPath(on bool) { useEnvelope = on }

// Start primes the price statistics, subscribes to price changes, runs
// the first autoscaling tick at the current time and schedules the rest.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	now := c.eng.Now()
	c.lastAccounted = now
	for _, id := range c.markets {
		id := id
		dm := forecast.NewDecayingMoments(c.cfg.VolatilityHalflife)
		dm.Observe(now, c.prov.SpotPrice(id))
		c.moments[id] = dm
		c.prov.SubscribePrice(id, func(t sim.Time, price float64) { dm.Observe(t, price) })
	}
	c.tick()
}

func (c *Controller) tick() {
	now := c.eng.Now()
	c.advance(now)
	load := c.cfg.Demand.At(now)
	target := c.cfg.Planner.Replicas(load)
	if target < c.cfg.MinReplicas {
		target = c.cfg.MinReplicas
	}
	if target > c.cfg.MaxReplicas {
		target = c.cfg.MaxReplicas
	}
	c.target = target
	c.targetUnits = target * c.anchorUnits
	if target > c.peakTarget {
		c.peakTarget = target
	}
	c.reconcile()
	c.reverseReplace()
	c.downsize()
	c.rebalance()
	c.sampleOccupancy(now)
	c.eng.PostAfter(c.cfg.Tick, c.tickFn)
}

// bid returns the fleet's spot bid for a market: BidMultiple x on-demand,
// clamped to the provider's cap.
func (c *Controller) bid(id market.ID) float64 {
	b := c.cfg.BidMultiple * c.prov.OnDemandPrice(id)
	if max := c.prov.MaxBid(id); b > max {
		b = max
	}
	return b
}

// capacityUnits sums the capacity units of replicas the controller
// treats as durable serving capacity: anything not warned of revocation
// and not a still-pending reverse replacement (whose draining partner is
// counted instead). In legacy mode every replica is one unit, so this is
// the old replica count.
func (c *Controller) capacityUnits() int {
	n := 0
	for _, r := range c.replicas {
		if r.doomed || r.replaces != nil {
			continue
		}
		n += r.units
	}
	return n
}

// spotInMarket sums in-flight spot capacity units per market (pending or
// alive, including doomed ones — they still occupy the market).
func (c *Controller) spotInMarket() map[market.ID]int {
	if c.occScratch == nil {
		c.occScratch = make(map[market.ID]int, len(c.markets))
	} else {
		clear(c.occScratch)
	}
	out := c.occScratch
	for _, r := range c.replicas {
		if r.spot {
			out[r.in.Market()] += r.units
		}
	}
	return out
}

// allSizes is the size mask admitting every instance size; see sizeMask.
const allSizes = -1

// minSizeMask admits every size of at least min capacity units. Unit
// counts are powers of two, so a size's mask bit is the size itself.
func minSizeMask(min int) int { return ^(min - 1) }

// candidates builds the strategy input: every configured market whose
// current spot price the fleet's bid covers, sorted by market ID.
// sizeMask bounds the candidate instance size: unit counts are powers of
// two, so bit u of the mask admits u-unit markets (allSizes admits all —
// always the case in legacy mode, where every market is one unit). The
// returned slice aliases a controller-owned scratch buffer and is valid
// only until the next candidates call.
func (c *Controller) candidates(sizeMask int) []Candidate {
	now := c.eng.Now()
	occ := c.spotInMarket()
	if c.candScratch == nil {
		c.candScratch = make([]Candidate, 0, len(c.markets))
	}
	cands := c.candScratch[:0]
	for i, id := range c.markets {
		u := c.mktUnits[i]
		if u&sizeMask == 0 {
			continue
		}
		spot := c.prov.SpotPrice(id)
		if spot > c.bid(id) {
			continue
		}
		dm := c.moments[id]
		cands = append(cands, Candidate{
			ID:       id,
			Spot:     spot,
			OnDemand: c.prov.OnDemandPrice(id),
			Mean:     dm.Mean(now),
			Vol:      dm.Std(now),
			Replicas: occ[id],
			Units:    u,
			InvUnits: c.mktInv[i],
		})
	}
	c.candScratch = cands
	return cands
}

// computeCheapestOnDemand scans the configured markets once at
// construction for the lowest on-demand price (per capacity unit in
// catalog mode; ties broken by ID order). In catalog mode, markets no
// bigger than the anchor are preferred so an on-demand fallback for a
// one-anchor deficit does not buy a many-unit box at full price; when
// every market is bigger, the cheapest per-unit one wins.
func (c *Controller) computeCheapestOnDemand() market.ID {
	if c.cfg.Catalog == nil {
		best := c.markets[0]
		for _, id := range c.markets[1:] {
			if c.prov.OnDemandPrice(id) < c.prov.OnDemandPrice(best) {
				best = id
			}
		}
		return best
	}
	bestIdx, bestAnyIdx := -1, -1
	var bestPer, bestAnyPer float64
	for i, id := range c.markets {
		per := c.prov.OnDemandPrice(id) * c.mktInv[i]
		if bestAnyIdx < 0 || per < bestAnyPer {
			bestAnyIdx, bestAnyPer = i, per
		}
		if c.mktUnits[i] <= c.anchorUnits && (bestIdx < 0 || per < bestPer) {
			bestIdx, bestPer = i, per
		}
	}
	if bestIdx < 0 {
		bestIdx = bestAnyIdx
	}
	return c.markets[bestIdx]
}

// cheapestOnDemand returns the construction-time cheapest on-demand
// market: on-demand prices never change and the catalog is fixed per
// controller, so no rescans happen on the replacement/report hot path.
func (c *Controller) cheapestOnDemand() market.ID { return c.odBest }

// fastPick resolves the strategy's placement via the precomputed envelope
// without building a candidate slice. It returns the picked market and
// its effective price (raw in legacy mode, per-unit in catalog mode).
// ok=false means the fast path cannot decide and the caller must run the
// full candidates+Pick scan. sizeMask mirrors the caller's candidate size
// bound: an argmin outside it defers to the scan.
//
// Exactness: the envelope yields the FIRST market (in the controller's
// sorted order — the same order candidates are built in) with the strictly
// minimal weighted spot price, and its weights are exactly the InvUnits
// the candidates carry, so the weighted price equals Candidate.eff
// bit-for-bit. If that market is feasible (raw price <= bid) and within
// the size bounds, it is in the filtered candidate list and every earlier
// candidate prices strictly higher, so LowestPrice.Pick returns exactly
// it; Diversified.Pick does too when it is under the per-market cap. An
// infeasible argmin (or one at its cap or outside the bounds) says
// nothing about the rest, hence the fallback.
func (c *Controller) fastPick(sizeMask int) (market.ID, float64, bool) {
	if c.envCur == nil {
		return market.ID{}, 0, false
	}
	id, price, weighted := c.envCur.At(c.eng.Now())
	if price > c.bid(id) {
		return market.ID{}, 0, false
	}
	if c.mktUnits[c.mktIdx[id]]&sizeMask == 0 {
		return market.ID{}, 0, false
	}
	switch st := c.cfg.Strategy.(type) {
	case LowestPrice:
		return id, weighted, true
	case Diversified:
		share := st.MaxShare
		if share <= 0 || share > 1 {
			share = DefaultMaxShare
		}
		limit := int(math.Ceil(share * float64(c.targetUnits)))
		if limit < 1 {
			limit = 1
		}
		occ := 0
		for _, r := range c.replicas {
			if r.spot && r.in.Market() == id {
				occ += r.units
			}
		}
		if occ < limit {
			return id, weighted, true
		}
	}
	return market.ID{}, 0, false
}

// reconcile launches replicas to cover a capacity deficit and retires
// surplus ones. Launches prefer spot via the strategy; when no market is
// acceptable (every one spiking above the bid) the replica falls back to
// on-demand in the cheapest market.
func (c *Controller) reconcile() {
	for c.capacityUnits() < c.targetUnits {
		before := len(c.replicas)
		c.launch(nil)
		if len(c.replicas) == before {
			return // no market grantable at all; next tick retries
		}
	}
	if surplus := c.capacityUnits() - c.targetUnits; surplus > 0 {
		// In mixed mode an overshooting consolidation launch creates
		// surplus on purpose, but the replacement box takes minutes to
		// boot: retiring live victims against pending capacity would break
		// before making. Track alive durable units and defer any trim that
		// would dip below target — onRunning reconciles again when the
		// pending box boots and finishes the job.
		aliveUnits := 0
		if c.mixed {
			for _, r := range c.replicas {
				if r.doomed || r.replaces != nil || !r.in.Alive() {
					continue
				}
				aliveUnits += r.units
			}
		}
		for _, r := range c.surplusPool() {
			if surplus <= 0 {
				break
			}
			if r.units > surplus {
				continue // retiring it would undershoot the target
			}
			if c.mixed && r.in.Alive() {
				if aliveUnits-r.units < c.targetUnits {
					continue // keep serving until the pending box boots
				}
				aliveUnits -= r.units
			}
			surplus -= r.units
			c.scaleDowns++
			c.retire(r)
		}
	}
}

// launchSizeMask returns the admissible instance sizes for a fresh
// launch covering deficit units: a size fits if it is no bigger than the
// deficit, or if the overshoot it causes would be fully reclaimed by the
// surplus trim that reconcile runs right after the launch loop (greedy
// over the victim pool in price order, skipping replicas bigger than the
// remaining surplus — simulated here exactly). The second case is the
// consolidation path: a cheap big box replaces several expensive small
// ones within one reconcile pass, never stranding paid-for surplus.
func (c *Controller) launchSizeMask(deficit int) int {
	if !c.mixed {
		return allSizes
	}
	mask := 0
	var pool []*replica
	for _, u := range c.mktUnits {
		if u&mask != 0 {
			continue
		}
		if u <= deficit {
			mask |= u
			continue
		}
		if pool == nil {
			pool = c.surplusPool()
		}
		s := u - deficit
		for _, r := range pool {
			if s == 0 {
				break
			}
			if r.units <= s {
				s -= r.units
			}
		}
		if s == 0 {
			mask |= u
		}
	}
	return mask
}

// launch starts one replica. replaces, when non-nil, marks a reverse
// replacement draining that on-demand replica (the replacement must be at
// least as big, in capacity units, as what it drains). A fresh launch is
// size-bounded by launchSizeMask so overshoot is only ever transient; if
// every admissible-size market is spiking, the bound lifts — overshooting
// with a big cheap spot box beats an on-demand fallback.
func (c *Controller) launch(replaces *replica) {
	mask := allSizes
	deficit := 0
	if replaces != nil {
		// At least the drained replica's size; bigger only when the trim
		// can reclaim the overshoot (same consolidation rule as fresh
		// launches, with the drained units as the hole being filled).
		mask = minSizeMask(replaces.units) & c.launchSizeMask(replaces.units)
	} else if c.mixed {
		deficit = c.targetUnits - c.capacityUnits()
		mask = c.launchSizeMask(deficit)
	}
	id, eff, havePick := c.pickEff(mask)
	if !havePick && replaces == nil && mask != allSizes {
		// Every admissible-size market is spiking: lift the size bound —
		// overshooting with a big cheap spot box beats an on-demand
		// fallback.
		id, eff, havePick = c.pickEff(allSizes)
	}
	if havePick && replaces == nil && deficit > 0 {
		if u := c.mktUnits[c.mktIdx[id]]; u > deficit {
			gated := c.gateConsolidation(id, eff, u, deficit)
			if gated == id && c.eng.Obs() != nil {
				c.obsNote = "consolidate"
			}
			id = gated
		}
	}
	if havePick {
		class := "spot"
		if replaces != nil {
			class = "reverse"
		}
		if c.requestSpot(id, replaces, class) {
			return
		}
	}
	if replaces != nil {
		// No spot market is acceptable: nothing to drain onto.
		return
	}
	// Fall back to a non-revocable on-demand replica.
	c.requestOnDemand("on-demand")
}

// pickEff picks a market under the size mask and returns it with its
// effective (per-unit) price: the envelope fast path first, then the
// full candidate slice (required for StabilityOptimized and whenever the
// envelope's global argmin is infeasible, capped or mis-sized).
func (c *Controller) pickEff(mask int) (market.ID, float64, bool) {
	if id, eff, ok := c.fastPick(mask); ok {
		return id, eff, true
	}
	cands := c.candidates(mask)
	if len(cands) == 0 {
		return market.ID{}, 0, false
	}
	id, ok := c.cfg.Strategy.Pick(cands, c.targetUnits)
	if !ok {
		return market.ID{}, 0, false
	}
	for _, cand := range cands {
		if cand.ID == id {
			return id, cand.eff(), true
		}
	}
	return id, 0, true
}

// reclaimCost sums the current hourly price of the replicas the surplus
// trim would greedily retire to reclaim overshoot units; exact reports
// whether the pool covers the overshoot without undershooting.
func (c *Controller) reclaimCost(overshoot int) (cost float64, exact bool) {
	s := overshoot
	for _, r := range c.surplusPool() {
		if s == 0 {
			break
		}
		if r.units <= s {
			s -= r.units
			cost += c.priceOf(r)
		}
	}
	return cost, s == 0
}

// gateConsolidation decides whether an overshooting pick (a box bigger
// than the deficit, admitted because the trim can reclaim the excess) is
// actually worth the swap: the box must undercut keeping the would-be
// victims and filling the deficit at the best right-sized rate, by the
// reverse-hysteresis margin. Marginal consolidations otherwise pay a
// whole make-before-break boot overlap for pocket change — and invite
// the downsize path to churn the fleet right back overnight.
func (c *Controller) gateConsolidation(id market.ID, eff float64, u, deficit int) market.ID {
	smallMask := 0
	for s := 1; s <= deficit; s <<= 1 {
		smallMask |= s
	}
	altID, altEff, ok := c.pickEff(smallMask)
	if !ok {
		return id // no right-sized market grantable; overshoot anyway
	}
	reclaim, exact := c.reclaimCost(u - deficit)
	if !exact {
		return id
	}
	h := c.cfg.ReverseHysteresis
	if h < 0 {
		h = 0
	}
	if eff*float64(u) < (1-h)*(reclaim+altEff*float64(deficit)) {
		return id // consolidation pays for itself
	}
	return altID
}

// requestOnDemand starts one replica in the cheapest on-demand market
// and returns it (nil on provider rejection, unreachable in practice).
// class labels the request in the decision ledger ("on-demand" fallback
// or "bridge").
func (c *Controller) requestOnDemand(class string) *replica {
	odID := c.cheapestOnDemand()
	r := &replica{}
	i := c.mktIdx[odID]
	r.units, r.invUnits = c.mktUnits[i], c.mktInv[i]
	in, err := c.prov.RequestOnDemand(odID, c.callbacks(r))
	if err != nil {
		return nil // unreachable: markets were validated at construction
	}
	if o := c.eng.Obs(); o != nil {
		c.recordDecision(o, class, odID, i, c.prov.OnDemandPrice(odID), 0, "", nil)
	}
	r.in = in
	if rec := c.eng.Recorder(); rec != nil {
		r.span = rec.Begin(trace.KindLaunch, "on-demand", in.Market().String(), c.eng.Now())
	}
	c.launches++
	c.odFallbacks++
	c.replicas = append(c.replicas, r)
	return r
}

// requestSpot starts one spot replica in market id, optionally draining
// replaces once it boots. Returns false when the provider rejects the
// request.
func (c *Controller) requestSpot(id market.ID, replaces *replica, class string) bool {
	r := &replica{spot: true, replaces: replaces}
	i := c.mktIdx[id]
	r.units, r.invUnits = c.mktUnits[i], c.mktInv[i]
	o := c.eng.Obs()
	margin, note := c.obsMargin, c.obsNote
	if o != nil {
		c.obsMargin, c.obsNote = 0, ""
	}
	in, err := c.prov.RequestSpot(id, c.bid(id), c.callbacks(r))
	if err != nil {
		return false
	}
	if o != nil {
		c.recordDecision(o, class, id, i, c.prov.SpotPrice(id), margin, note, replaces)
	}
	r.in = in
	if rec := c.eng.Recorder(); rec != nil {
		r.span = rec.Begin(trace.KindLaunch, class, in.Market().String(), c.eng.Now())
	}
	c.launches++
	c.replicas = append(c.replicas, r)
	return true
}

// priceOf returns a replica's current hourly price: the live spot price
// for spot replicas, the fixed on-demand price otherwise.
func (c *Controller) priceOf(r *replica) float64 {
	if r.spot {
		return c.prov.SpotPrice(r.in.Market())
	}
	return c.prov.OnDemandPrice(r.in.Market())
}

// surplusPool returns the counted replicas in scale-down victim order:
// on-demand first (they cost full price), then the most expensive spot
// per capacity unit, newest first on ties. reconcile pops greedily,
// skipping replicas bigger than the remaining surplus.
func (c *Controller) surplusPool() []*replica {
	var pool []*replica
	for _, r := range c.replicas {
		if r.doomed || r.replaces != nil {
			continue
		}
		pool = append(pool, r)
	}
	sort.SliceStable(pool, func(i, j int) bool {
		a, b := pool[i], pool[j]
		if a.spot != b.spot {
			return !a.spot // on-demand first
		}
		pa, pb := c.priceOf(a)*a.invUnits, c.priceOf(b)*b.invUnits
		if pa != pb {
			return pa > pb // most expensive first
		}
		return a.in.ID() > b.in.ID() // newest first
	})
	return pool
}

// retire terminates a replica the controller chose to drop, along with a
// pending reverse replacement targeting it.
func (c *Controller) retire(r *replica) {
	for _, other := range c.replicas {
		if other.replaces == r {
			other.replaces = nil
			c.terminate(other)
		}
	}
	c.terminate(r)
}

// terminate releases the instance; removal from c.replicas happens in the
// synchronous OnTerminated callback.
func (c *Controller) terminate(r *replica) {
	if r.in.State() == cloud.Terminated {
		return
	}
	_ = c.prov.Terminate(r.in)
}

// reverseReplace drains up to MaxReversePerTick on-demand replicas whose
// market a recovered spot market now undercuts by at least the hysteresis
// margin: a spot replacement launches first, and the on-demand replica is
// terminated only once the replacement boots.
func (c *Controller) reverseReplace() {
	if c.cfg.ReverseHysteresis < 0 {
		return
	}
	started := 0
	for _, r := range c.replicas {
		if started >= c.cfg.MaxReversePerTick {
			return
		}
		if r.spot || r.draining || r.doomed || !r.in.Alive() {
			continue
		}
		// The replacement must carry at least the drained replica's units,
		// and prices compare per unit (raw in legacy mode — invUnits 1).
		_, pickSpot, havePick := c.fastPick(minSizeMask(r.units))
		if !havePick {
			cands := c.candidates(minSizeMask(r.units))
			if len(cands) == 0 {
				return
			}
			id, ok := c.cfg.Strategy.Pick(cands, c.targetUnits)
			if !ok {
				return
			}
			for _, cand := range cands {
				if cand.ID == id {
					pickSpot = cand.eff()
					break
				}
			}
		}
		odPrice := c.prov.OnDemandPrice(r.in.Market())
		if pickSpot >= (1-c.cfg.ReverseHysteresis)*odPrice*r.invUnits {
			return // best spot offer not cheap enough yet
		}
		if c.eng.Obs() != nil {
			c.obsMargin = 1 - pickSpot/(odPrice*r.invUnits)
		}
		before := len(c.replicas)
		c.launch(r)
		if len(c.replicas) == before {
			return // launch failed
		}
		r.draining = true
		started++
	}
}

// rebalance migrates the most overpriced spot replica onto a market that
// currently undercuts it by at least the hysteresis margin, make-before-
// break. Spot replicas otherwise ride their market's drift until revoked:
// a fleet that is rarely revoked (big boxes bid high above small-market
// spikes) never re-optimizes, and ends up paying more per unit-hour than
// a churning single-type fleet whose revocations constantly force it back
// to the cheapest market. Mixed-size mode only — the legacy controller
// keeps the paper's migrate-on-revocation-only behavior.
func (c *Controller) rebalance() {
	if !c.mixed || c.cfg.RebalanceHysteresis < 0 {
		return
	}
	for started := 0; started < c.cfg.MaxReversePerTick; started++ {
		// Same-size moves only: a bigger replacement would manufacture
		// surplus for downsize to shave (and a smaller one a hole),
		// churning the fleet through boot overlaps. Size changes stay the
		// business of the consolidation gate and downsize.
		var victim *replica
		var victimID market.ID
		var victimGap float64 // per-unit price gap to the best replacement
		for _, r := range c.replicas {
			if !r.spot || r.draining || r.doomed || r.replaces != nil || !r.in.Alive() {
				continue
			}
			cur := c.priceOf(r) * r.invUnits
			id, eff, ok := c.pickEff(r.units)
			if !ok || eff >= (1-c.cfg.RebalanceHysteresis)*cur {
				continue
			}
			gap := cur - eff
			if victim == nil || gap > victimGap || (gap == victimGap && r.in.ID() > victim.in.ID()) {
				victim, victimID, victimGap = r, id, gap
			}
		}
		if victim == nil {
			return
		}
		if c.eng.Obs() != nil {
			c.obsMargin = victimGap / (c.priceOf(victim) * victim.invUnits)
		}
		if !c.requestSpot(victimID, victim, "rebalance") {
			return // provider rejected; retry next tick
		}
		victim.draining = true
		victim.rebal = true
	}
}

// downsize shrinks an oversized mixed fleet. Scale-down can leave a
// surplus that trimming cannot reclaim because every remaining replica is
// bigger than the surplus (a big box bought at the daytime peak, stranded
// when the overnight target drops below its size). When that happens the
// controller launches a smaller, currently cheaper replacement for the
// most expensive such box and retires the box once the replacement boots
// — the same make-before-break drain as reverse replacement, rate-limited
// by the same knob. No-op in legacy mode, where every replica is one unit
// and trimming alone tracks the target exactly.
func (c *Controller) downsize() {
	if !c.mixed || c.cfg.ReverseHysteresis < 0 {
		return
	}
	started := 0
	for started < c.cfg.MaxReversePerTick {
		// Only alive surplus counts: overshoot explained by a pending
		// consolidation box is transient — the deferred trim reclaims it
		// when the box boots — and must not trigger a drain of its own.
		surplus := -c.targetUnits
		for _, r := range c.replicas {
			if r.doomed || r.replaces != nil || !r.in.Alive() {
				continue
			}
			surplus += r.units
		}
		if surplus <= 0 {
			return
		}
		var victim *replica
		var victimPer float64
		for _, r := range c.replicas {
			if r.doomed || r.replaces != nil || r.draining || !r.in.Alive() || r.units <= surplus {
				continue
			}
			per := c.priceOf(r) * r.invUnits
			if victim == nil || per > victimPer || (per == victimPer && r.in.ID() > victim.in.ID()) {
				victim, victimPer = r, per
			}
		}
		if victim == nil {
			return
		}
		// The victim's kept capacity, decomposed into power-of-two pieces
		// (needed < victim.units, so every piece is strictly smaller). A
		// one-unit surplus on a 4-box drains onto a {2,1} pair; no single
		// size could. Pick a market for every piece before launching any,
		// so the hysteresis test sees the full replacement bill.
		needed := victim.units - surplus
		var pieces []market.ID
		var total float64
		feasible := true
		for s := 1; s <= needed; s <<= 1 {
			if needed&s == 0 {
				continue
			}
			cands := c.candidates(s)
			if len(cands) == 0 {
				feasible = false
				break
			}
			id, ok := c.cfg.Strategy.Pick(cands, c.targetUnits)
			if !ok {
				feasible = false
				break
			}
			for _, cand := range cands {
				if cand.ID == id {
					total += cand.Spot
					break
				}
			}
			pieces = append(pieces, id)
		}
		if !feasible {
			return
		}
		// Only worth it when the replacement set undercuts the whole big
		// box by the hysteresis margin — in dollars, not per unit: the
		// point is to stop paying for stranded units.
		if total >= (1-c.cfg.ReverseHysteresis)*c.priceOf(victim) {
			return
		}
		launched := 0
		for _, id := range pieces {
			if c.eng.Obs() != nil {
				c.obsMargin = 1 - total/c.priceOf(victim)
			}
			if !c.requestSpot(id, victim, "downsize") {
				break
			}
			launched++
		}
		if launched < len(pieces) {
			// Provider rejected a piece mid-set (practically unreachable:
			// candidates are bid-feasible). Detach what launched — the
			// pieces become ordinary capacity and the trim reclaims them.
			for _, r := range c.replicas {
				if r.replaces == victim {
					r.replaces = nil
				}
			}
			return
		}
		victim.draining = true
		started++
	}
}

func (c *Controller) callbacks(r *replica) cloud.Callbacks {
	return cloud.Callbacks{
		OnRunning:           func(*cloud.Instance) { c.onRunning(r) },
		OnRevocationWarning: func(_ *cloud.Instance, _ sim.Time) { c.onWarning(r) },
		OnTerminated:        func(_ *cloud.Instance, reason cloud.TerminationReason) { c.onTerminated(r, reason) },
	}
}

func (c *Controller) onRunning(r *replica) {
	c.advance(c.eng.Now())
	if rec := c.eng.Recorder(); rec != nil {
		d := rec.End(r.span, c.eng.Now())
		r.span = 0
		if tgt := r.replaces; tgt != nil {
			// Drain latency: request to promoted capacity.
			switch {
			case !tgt.spot:
				rec.ObserveMigration("reverse", d)
			case tgt.rebal:
				rec.ObserveMigration("rebalance", d)
			default:
				rec.ObserveMigration("downsize", d)
			}
		}
	}
	if tgt := r.replaces; tgt != nil {
		// A downsize may drain one big box onto several smaller pieces;
		// the box retires only when the LAST piece boots, so capacity
		// never dips. Earlier pieces stay attached (excluded from the
		// capacity count, which the still-alive box covers).
		last := true
		for _, other := range c.replicas {
			if other != r && other.replaces == tgt && !other.in.Alive() {
				last = false
				break
			}
		}
		if last {
			// Retire the drained replica — an on-demand replica for
			// reverse replacement, an oversized spot box for a downsize —
			// and promote every piece to regular capacity.
			for _, other := range c.replicas {
				if other.replaces == tgt {
					other.replaces = nil
				}
			}
			r.replaces = nil
			switch {
			case !tgt.spot:
				c.reverses++
			case tgt.rebal:
				c.rebalances++
				if o := c.eng.Obs(); o != nil {
					o.Count(float64(c.eng.Now()), obs.CountRebalance)
				}
			default:
				c.downsizes++
			}
			c.terminate(tgt)
		}
	}
	c.reconcile() // trim surplus if the target dropped while booting
}

func (c *Controller) onWarning(r *replica) {
	c.advance(c.eng.Now())
	if rec := c.eng.Recorder(); rec != nil {
		rec.Instant(trace.KindWarning, "", r.in.Market().String(), c.eng.Now())
	}
	if o := c.eng.Obs(); o != nil {
		o.Count(float64(c.eng.Now()), obs.CountInterruption)
	}
	r.doomed = true
	// The replica serves until the grace deadline, but its capacity is
	// lost: replace it now. The spiking market prices itself out of the
	// candidate list, so the replacement lands elsewhere (or on-demand).
	//
	// A doomed box bigger than the anchor gets an on-demand bridge first:
	// spot startup exceeds the grace period, so a spot replacement for a
	// big box would leave a many-unit hole, while on-demand boots inside
	// the grace window. Each bridge is born draining — its spot successor
	// launches in the same instant, and the bridge retires the moment the
	// successor boots, so the on-demand premium is paid only for one spot
	// boot time. One-unit losses keep the legacy spot-replacement path.
	if c.mixed && r.spot && r.units > c.anchorUnits {
		bridgeUnits := c.mktUnits[c.mktIdx[c.odBest]]
		for covered := 0; covered < r.units; covered += bridgeUnits {
			b := c.requestOnDemand("bridge")
			if b == nil {
				break
			}
			before := len(c.replicas)
			c.launch(b)
			if len(c.replicas) > before {
				b.draining = true
			}
		}
	}
	c.reconcile()
}

func (c *Controller) onTerminated(r *replica, reason cloud.TerminationReason) {
	now := c.eng.Now()
	c.advance(now)
	c.remove(r)
	switch reason {
	case cloud.ReasonRevoked:
		if rec := c.eng.Recorder(); rec != nil {
			rec.Instant(trace.KindLoss, "", r.in.Market().String(), now)
		}
		if o := c.eng.Obs(); o != nil {
			o.Count(float64(now), obs.CountLoss)
		}
		c.lost++
		c.lossAt[now]++
		c.reconcile()
	case cloud.ReasonNeverGranted:
		if rec := c.eng.Recorder(); rec != nil {
			rec.EndWith(r.span, now, "never-granted")
			r.span = 0
		}
		c.neverGranted++
		if tgt := r.replaces; tgt != nil {
			// Drain aborted; the drained replica stays. Detach any sibling
			// pieces of a multi-piece downsize — they become ordinary
			// capacity and the trim reclaims them once they boot.
			tgt.draining = false
			for _, other := range c.replicas {
				if other.replaces == tgt {
					other.replaces = nil
				}
			}
		} else {
			c.reconcile()
		}
	case cloud.ReasonUser:
		// Controller-initiated; bookkeeping only.
	}
}

func (c *Controller) remove(r *replica) {
	for i, other := range c.replicas {
		if other == r {
			c.replicas = append(c.replicas[:i], c.replicas[i+1:]...)
			return
		}
	}
}

// advance integrates the capacity and occupancy accounting up to now.
// It must run before every state change (tick, boot, warning,
// termination) so each interval is credited under the state that held.
func (c *Controller) advance(now sim.Time) {
	dt := float64(now - c.lastAccounted)
	if dt <= 0 {
		return
	}
	c.lastAccounted = now
	alive := 0
	for _, r := range c.replicas {
		if !r.in.Alive() {
			continue
		}
		alive += r.units
		ds := dt * float64(r.units)
		u := c.marketSecs[r.in.Market()]
		if r.spot {
			c.spotSecs += ds
			u.SpotSeconds += ds
		} else {
			c.odSecs += ds
			u.OnDemandSeconds += ds
		}
	}
	c.targetSecs += float64(c.targetUnits) * dt
	served := alive
	if served > c.targetUnits {
		served = c.targetUnits
	}
	c.servedSecs += float64(served) * dt
	if o := c.eng.Obs(); o != nil {
		// Same instant, same values as the accounting above, so the gauge
		// integrals reproduce targetSecs/servedSecs exactly.
		o.Capacity(float64(now), served, c.targetUnits)
	}
}

// recordDecision appends one ledger entry for an accepted capacity
// request, carrying the inputs that justified it. Reading prices and the
// envelope cursor here is safe: both are pure at a fixed virtual time,
// and the ledger never feeds back into placement, so obs-on runs stay
// byte-identical to obs-off runs.
func (c *Controller) recordDecision(o *obs.Recorder, action string, id market.ID,
	idx int, price, margin float64, note string, replaces *replica) {

	now := float64(c.eng.Now())
	d := obs.Decision{
		At:            now,
		Action:        action,
		Market:        id.String(),
		Type:          string(id.Type),
		Price:         price * c.mktInv[idx],
		Units:         c.mktUnits[idx],
		Rank:          idx,
		Margin:        margin,
		Note:          note,
		TargetUnits:   c.targetUnits,
		CapacityUnits: c.capacityUnits(),
		QuotaUnits:    c.cfg.MaxReplicas * c.anchorUnits,
	}
	if action != "on-demand" && action != "bridge" {
		d.Bid = c.bid(id)
	}
	if c.envCur != nil {
		am, _, weighted := c.envCur.At(c.eng.Now())
		d.ArgminMarket = am.String()
		d.ArgminPrice = weighted
	}
	if replaces != nil && replaces.in != nil {
		d.Replaces = replaces.in.Market().String()
	}
	o.Count(now, obs.CountLaunch)
	o.Decide(d)
}

// obsServed returns the capacity serving at this instant — the same
// min(alive, target) quantity advance integrates — for folding the open
// telemetry tail.
func (c *Controller) obsServed() int {
	alive := 0
	for _, r := range c.replicas {
		if r.in.Alive() {
			alive += r.units
		}
	}
	if alive > c.targetUnits {
		return c.targetUnits
	}
	return alive
}

// ObsTimeline snapshots the telemetry timeline as of the current virtual
// time without mutating recorder or controller — the open accounting
// tail is folded into a copy, mirroring Report's purity rules — so the
// control plane can publish timelines mid-run at any cadence without
// perturbing the final export. Returns the zero Timeline when telemetry
// is off.
func (c *Controller) ObsTimeline() obs.Timeline {
	o := c.eng.Obs()
	if o == nil {
		return obs.Timeline{}
	}
	return o.Snapshot(float64(c.eng.Now()), c.obsServed(), c.targetUnits)
}

// finalizeObs commits the open telemetry tail at the horizon.
func (c *Controller) finalizeObs(now sim.Time) {
	if o := c.eng.Obs(); o != nil {
		o.Finalize(float64(now), c.obsServed(), c.targetUnits)
	}
}

// sampleOccupancy appends an occupancy snapshot at most once per hour.
func (c *Controller) sampleOccupancy(now sim.Time) {
	if now-c.lastSample < sim.Hour {
		return
	}
	c.lastSample = now
	pt := OccupancyPoint{At: now, Spot: map[market.ID]int{}}
	for _, r := range c.replicas {
		if !r.in.Alive() {
			continue
		}
		if r.spot {
			pt.Spot[r.in.Market()]++
		} else {
			pt.OnDemand++
		}
	}
	c.occupancy = append(c.occupancy, pt)
}

// Target returns the current replica target.
func (c *Controller) Target() int { return c.target }

// Alive returns the number of currently serving replicas.
func (c *Controller) Alive() int {
	n := 0
	for _, r := range c.replicas {
		if r.in.Alive() {
			n++
		}
	}
	return n
}

// Report returns the run report as of the engine's current time without
// mutating the controller: the interval since the last committed state
// change is folded in as a read-only delta. Keeping Report pure is what
// lets the stepped runtime (Sim, internal/controlplane) snapshot a fleet
// mid-run at any cadence and still produce a final report byte-identical
// to an unsnapshotted run — committing the tail here would split the
// accumulators' float sums at every snapshot point.
func (c *Controller) Report() Report {
	now := c.eng.Now()
	var dTarget, dServed, dSpot, dOD float64
	var dm map[market.ID]MarketUsage
	if dt := float64(now - c.lastAccounted); dt > 0 {
		dm = make(map[market.ID]MarketUsage, 4)
		alive := 0
		for _, r := range c.replicas {
			if !r.in.Alive() {
				continue
			}
			alive += r.units
			ds := dt * float64(r.units)
			u := dm[r.in.Market()]
			if r.spot {
				dSpot += ds
				u.SpotSeconds += ds
			} else {
				dOD += ds
				u.OnDemandSeconds += ds
			}
			dm[r.in.Market()] = u
		}
		dTarget = float64(c.targetUnits) * dt
		served := alive
		if served > c.targetUnits {
			served = c.targetUnits
		}
		dServed = float64(served) * dt
	}
	rep := Report{
		Strategy:             c.cfg.Strategy.Name(),
		Horizon:              sim.Duration(now),
		TargetReplicaSeconds: c.targetSecs + dTarget,
		ServedReplicaSeconds: c.servedSecs + dServed,
		PeakTarget:           c.peakTarget,
		Cost:                 c.prov.Ledger().Total(),
		SpotSeconds:          c.spotSecs + dSpot,
		OnDemandSeconds:      c.odSecs + dOD,
		Launches:             c.launches,
		SpotLaunches:         c.launches - c.odFallbacks,
		OnDemandFallbacks:    c.odFallbacks,
		ReverseReplacements:  c.reverses,
		Downsizes:            c.downsizes,
		Rebalances:           c.rebalances,
		ReplicasLost:         c.lost,
		NeverGranted:         c.neverGranted,
		ScaleDowns:           c.scaleDowns,
		Occupancy:            c.occupancy,
		MarketSeconds:        map[market.ID]MarketUsage{},
	}
	// All-on-demand baseline: serving the full target from the cheapest
	// on-demand market (per capacity unit in catalog mode), billed
	// continuously.
	odRate := c.prov.OnDemandPrice(c.odBest) * c.mktInv[c.mktIdx[c.odBest]]
	rep.BaselineCost = rep.TargetReplicaSeconds / float64(sim.Hour) * odRate
	for id, u := range c.marketSecs {
		m := *u
		d := dm[id]
		m.SpotSeconds += d.SpotSeconds
		m.OnDemandSeconds += d.OnDemandSeconds
		rep.MarketSeconds[id] = m
	}
	times := make([]sim.Time, 0, len(c.lossAt))
	for t := range c.lossAt {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		rep.LossEvents = append(rep.LossEvents, LossEvent{At: t, Lost: c.lossAt[t]})
	}
	return rep
}
