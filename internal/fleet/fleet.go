// Package fleet extends the paper's single-VM scheduler to the ROADMAP
// north star: N replicas behind a load balancer. A Controller maintains a
// demand-driven target replica count by spreading spot instances across
// the markets of a market.Set (per an allocation Strategy), falling back
// to on-demand capacity when no spot market is acceptable, and draining
// on-demand replicas back onto spot once a cheap market recovers
// (AutoSpotting-style reverse replacement). A mass revocation in one
// market shows up as a partial capacity shortfall instead of the
// single-VM binary up/down.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"spothost/internal/cloud"
	"spothost/internal/forecast"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Defaults for Config fields left zero.
const (
	DefaultTick               = 5 * sim.Minute
	DefaultBidMultiple        = 1.5
	DefaultMaxReplicas        = 64
	DefaultReverseHysteresis  = 0.15
	DefaultMaxReversePerTick  = 1
	DefaultVolatilityHalflife = 12 * sim.Hour
)

// Config parameterizes a fleet controller.
type Config struct {
	// Markets are the candidate spot markets. Empty means every market of
	// the provider's set.
	Markets []market.ID
	// Strategy picks the spot market for each new replica.
	Strategy Strategy
	// Demand is the offered-load trace driving autoscaling.
	Demand Demand
	// Planner converts the load into a target replica count.
	Planner Planner
	// Tick is the autoscaling period. Zero means DefaultTick.
	Tick sim.Duration
	// BidMultiple sets each spot bid to BidMultiple x the market's
	// on-demand price (clamped to the provider's bid cap). Zero means
	// DefaultBidMultiple.
	BidMultiple float64
	// MinReplicas and MaxReplicas clamp the planner's target. Zeros mean
	// 1 and DefaultMaxReplicas.
	MinReplicas int
	MaxReplicas int
	// ReverseHysteresis is the discount a spot market must offer below an
	// on-demand replica's price before the controller drains that replica
	// onto spot. Zero means DefaultReverseHysteresis; negative disables
	// reverse replacement.
	ReverseHysteresis float64
	// MaxReversePerTick bounds reverse replacements started per tick.
	// Zero means DefaultMaxReversePerTick.
	MaxReversePerTick int
	// VolatilityHalflife is the decay half-life of the per-market price
	// moments fed to strategies. Zero means DefaultVolatilityHalflife.
	VolatilityHalflife sim.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.BidMultiple <= 0 {
		cfg.BidMultiple = DefaultBidMultiple
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 1
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = DefaultMaxReplicas
	}
	if cfg.ReverseHysteresis == 0 {
		cfg.ReverseHysteresis = DefaultReverseHysteresis
	}
	if cfg.MaxReversePerTick <= 0 {
		cfg.MaxReversePerTick = DefaultMaxReversePerTick
	}
	if cfg.VolatilityHalflife <= 0 {
		cfg.VolatilityHalflife = DefaultVolatilityHalflife
	}
	return cfg
}

// replica is one slot of the fleet: an instance plus its control state.
type replica struct {
	in   *cloud.Instance
	spot bool
	// doomed marks a spot replica that received a revocation warning; it
	// still serves until the deadline but no longer counts as durable
	// capacity, so a replacement launches immediately.
	doomed bool
	// replaces links a reverse-replacement spot replica to the on-demand
	// replica it will retire once booted; draining marks that on-demand
	// replica. A pending replacement does not count as capacity (its
	// draining partner still serves).
	replaces *replica
	draining bool
	// span is the replica's open launch span when tracing is on (0
	// otherwise): request → running, or → never-granted.
	span trace.SpanID
}

// Controller is the fleet controller. All methods must be called from
// inside the owning engine's event loop; construct with New and call
// Start before running the engine.
type Controller struct {
	eng     *sim.Engine
	prov    *cloud.Provider
	cfg     Config
	markets []market.ID // sorted by ID
	moments map[market.ID]*forecast.DecayingMoments

	started  bool
	target   int
	replicas []*replica // launch order == ascending instance ID

	// Hot-path caches: the shared cheapest-market envelope (only for
	// strategies whose pick it can reproduce exactly), the persistent tick
	// closure, and the memoized cheapest on-demand market (on-demand
	// prices are constants).
	envCur    *market.EnvelopeCursor
	tickFn    func()
	odBest    market.ID
	odBestSet bool

	// Time-integrated accounting, advanced before every state change.
	lastAccounted sim.Time
	targetSecs    float64
	servedSecs    float64
	spotSecs      float64
	odSecs        float64
	marketSecs    map[market.ID]*MarketUsage

	// Counters.
	launches     int
	spotLaunches int
	odFallbacks  int
	reverses     int
	lost         int
	neverGranted int
	scaleDowns   int
	peakTarget   int

	lossAt     map[sim.Time]int
	occupancy  []OccupancyPoint
	lastSample sim.Time
}

// New validates the config and builds a controller over the provider.
func New(prov *cloud.Provider, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Strategy == nil:
		return nil, fmt.Errorf("fleet: nil strategy")
	case cfg.Demand == nil:
		return nil, fmt.Errorf("fleet: nil demand")
	case cfg.Planner == nil:
		return nil, fmt.Errorf("fleet: nil planner")
	case cfg.MinReplicas > cfg.MaxReplicas:
		return nil, fmt.Errorf("fleet: MinReplicas %d > MaxReplicas %d", cfg.MinReplicas, cfg.MaxReplicas)
	}
	ids := cfg.Markets
	if len(ids) == 0 {
		ids = prov.Markets().IDs()
	}
	sorted := append([]market.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	for _, id := range sorted {
		if prov.Markets().Trace(id) == nil {
			return nil, fmt.Errorf("fleet: market %s not in set", id)
		}
	}
	c := &Controller{
		eng:        prov.Engine(),
		prov:       prov,
		cfg:        cfg,
		markets:    sorted,
		moments:    map[market.ID]*forecast.DecayingMoments{},
		marketSecs: map[market.ID]*MarketUsage{},
		lossAt:     map[sim.Time]int{},
		lastSample: -sim.Hour,
	}
	for _, id := range sorted {
		c.marketSecs[id] = &MarketUsage{}
	}
	c.tickFn = c.tick
	if useEnvelope {
		switch cfg.Strategy.(type) {
		case LowestPrice, Diversified:
			// Both place at the first-index cheapest feasible market, which
			// the precomputed envelope yields in O(1) amortized; see
			// fastPick for the exact-equivalence argument.
			if env := prov.Markets().Envelope(sorted, nil); env != nil {
				c.envCur = env.Cursor()
			}
		}
	}
	return c, nil
}

// useEnvelope gates the envelope fast path in fastPick; tests flip it off
// to prove the fast path places exactly like the full candidate scan.
var useEnvelope = true

// SetEnvelopeFastPath toggles the envelope fast path. It exists only so
// cross-package equivalence tests can render experiments against the
// reference candidate scan; production code leaves the fast path on.
// Not safe to flip while runs are in flight.
func SetEnvelopeFastPath(on bool) { useEnvelope = on }

// Start primes the price statistics, subscribes to price changes, runs
// the first autoscaling tick at the current time and schedules the rest.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	now := c.eng.Now()
	c.lastAccounted = now
	for _, id := range c.markets {
		id := id
		dm := forecast.NewDecayingMoments(c.cfg.VolatilityHalflife)
		dm.Observe(now, c.prov.SpotPrice(id))
		c.moments[id] = dm
		c.prov.SubscribePrice(id, func(t sim.Time, price float64) { dm.Observe(t, price) })
	}
	c.tick()
}

func (c *Controller) tick() {
	now := c.eng.Now()
	c.advance(now)
	load := c.cfg.Demand.At(now)
	target := c.cfg.Planner.Replicas(load)
	if target < c.cfg.MinReplicas {
		target = c.cfg.MinReplicas
	}
	if target > c.cfg.MaxReplicas {
		target = c.cfg.MaxReplicas
	}
	c.target = target
	if target > c.peakTarget {
		c.peakTarget = target
	}
	c.reconcile()
	c.reverseReplace()
	c.sampleOccupancy(now)
	c.eng.PostAfter(c.cfg.Tick, c.tickFn)
}

// bid returns the fleet's spot bid for a market: BidMultiple x on-demand,
// clamped to the provider's cap.
func (c *Controller) bid(id market.ID) float64 {
	b := c.cfg.BidMultiple * c.prov.OnDemandPrice(id)
	if max := c.prov.MaxBid(id); b > max {
		b = max
	}
	return b
}

// capacityCount counts replicas the controller treats as durable serving
// capacity: anything not warned of revocation and not a still-pending
// reverse replacement (whose draining partner is counted instead).
func (c *Controller) capacityCount() int {
	n := 0
	for _, r := range c.replicas {
		if r.doomed || r.replaces != nil {
			continue
		}
		n++
	}
	return n
}

// spotInMarket counts in-flight spot replicas per market (pending or
// alive, including doomed ones — they still occupy the market).
func (c *Controller) spotInMarket() map[market.ID]int {
	out := map[market.ID]int{}
	for _, r := range c.replicas {
		if r.spot {
			out[r.in.Market()]++
		}
	}
	return out
}

// candidates builds the strategy input: every configured market whose
// current spot price the fleet's bid covers, sorted by market ID.
func (c *Controller) candidates() []Candidate {
	now := c.eng.Now()
	occ := c.spotInMarket()
	cands := make([]Candidate, 0, len(c.markets))
	for _, id := range c.markets {
		spot := c.prov.SpotPrice(id)
		if spot > c.bid(id) {
			continue
		}
		dm := c.moments[id]
		cands = append(cands, Candidate{
			ID:       id,
			Spot:     spot,
			OnDemand: c.prov.OnDemandPrice(id),
			Mean:     dm.Mean(now),
			Vol:      dm.Std(now),
			Replicas: occ[id],
		})
	}
	return cands
}

// cheapestOnDemand returns the configured market with the lowest
// on-demand price (ties broken by ID order).
func (c *Controller) cheapestOnDemand() market.ID {
	if c.odBestSet {
		return c.odBest // on-demand prices never change
	}
	best := c.markets[0]
	for _, id := range c.markets[1:] {
		if c.prov.OnDemandPrice(id) < c.prov.OnDemandPrice(best) {
			best = id
		}
	}
	c.odBest, c.odBestSet = best, true
	return best
}

// fastPick resolves the strategy's placement via the precomputed envelope
// without building a candidate slice. ok=false means the fast path cannot
// decide and the caller must run the full candidates+Pick scan.
//
// Exactness: the envelope yields the FIRST market (in the controller's
// sorted order — the same order candidates are built in) with the strictly
// minimal spot price. If that market is feasible (price <= bid), it is in
// the filtered candidate list and every earlier candidate prices strictly
// higher, so LowestPrice.Pick returns exactly it; Diversified.Pick does
// too when it is under the per-market cap. An infeasible argmin (or one at
// its cap) says nothing about the rest, hence the fallback.
func (c *Controller) fastPick() (market.ID, float64, bool) {
	if c.envCur == nil {
		return market.ID{}, 0, false
	}
	id, price, _ := c.envCur.At(c.eng.Now())
	if price > c.bid(id) {
		return market.ID{}, 0, false
	}
	switch st := c.cfg.Strategy.(type) {
	case LowestPrice:
		return id, price, true
	case Diversified:
		share := st.MaxShare
		if share <= 0 || share > 1 {
			share = DefaultMaxShare
		}
		limit := int(math.Ceil(share * float64(c.target)))
		if limit < 1 {
			limit = 1
		}
		occ := 0
		for _, r := range c.replicas {
			if r.spot && r.in.Market() == id {
				occ++
			}
		}
		if occ < limit {
			return id, price, true
		}
	}
	return market.ID{}, 0, false
}

// reconcile launches replicas to cover a capacity deficit and retires
// surplus ones. Launches prefer spot via the strategy; when no market is
// acceptable (every one spiking above the bid) the replica falls back to
// on-demand in the cheapest market.
func (c *Controller) reconcile() {
	for c.capacityCount() < c.target {
		c.launch(nil)
	}
	if surplus := c.capacityCount() - c.target; surplus > 0 {
		victims := c.surplusVictims(surplus)
		for _, r := range victims {
			c.scaleDowns++
			c.retire(r)
		}
	}
}

// launch starts one replica. replaces, when non-nil, marks a reverse
// replacement draining that on-demand replica.
func (c *Controller) launch(replaces *replica) {
	id, _, havePick := c.fastPick()
	if !havePick {
		// Slow path: build the filtered candidate slice and ask the
		// strategy (required for StabilityOptimized and whenever the
		// envelope's global argmin is infeasible or capped).
		if cands := c.candidates(); len(cands) > 0 {
			id, havePick = c.cfg.Strategy.Pick(cands, c.target)
		}
	}
	if havePick {
		r := &replica{spot: true, replaces: replaces}
		in, err := c.prov.RequestSpot(id, c.bid(id), c.callbacks(r))
		if err == nil {
			r.in = in
			if rec := c.eng.Recorder(); rec != nil {
				class := "spot"
				if replaces != nil {
					class = "reverse"
				}
				r.span = rec.Begin(trace.KindLaunch, class, in.Market().String(), c.eng.Now())
			}
			c.launches++
			c.replicas = append(c.replicas, r)
			return
		}
	}
	if replaces != nil {
		// No spot market is acceptable: nothing to drain onto.
		return
	}
	// Fall back to a non-revocable on-demand replica.
	r := &replica{}
	in, err := c.prov.RequestOnDemand(c.cheapestOnDemand(), c.callbacks(r))
	if err != nil {
		return // unreachable: markets were validated at construction
	}
	r.in = in
	if rec := c.eng.Recorder(); rec != nil {
		r.span = rec.Begin(trace.KindLaunch, "on-demand", in.Market().String(), c.eng.Now())
	}
	c.launches++
	c.odFallbacks++
	c.replicas = append(c.replicas, r)
}

// surplusVictims picks n counted replicas to retire on scale-down:
// on-demand first (they cost full price), then the most expensive spot,
// newest first on ties.
func (c *Controller) surplusVictims(n int) []*replica {
	var pool []*replica
	for _, r := range c.replicas {
		if r.doomed || r.replaces != nil {
			continue
		}
		pool = append(pool, r)
	}
	price := func(r *replica) float64 {
		if r.spot {
			return c.prov.SpotPrice(r.in.Market())
		}
		return c.prov.OnDemandPrice(r.in.Market())
	}
	sort.SliceStable(pool, func(i, j int) bool {
		a, b := pool[i], pool[j]
		if a.spot != b.spot {
			return !a.spot // on-demand first
		}
		pa, pb := price(a), price(b)
		if pa != pb {
			return pa > pb // most expensive first
		}
		return a.in.ID() > b.in.ID() // newest first
	})
	if n > len(pool) {
		n = len(pool)
	}
	return pool[:n]
}

// retire terminates a replica the controller chose to drop, along with a
// pending reverse replacement targeting it.
func (c *Controller) retire(r *replica) {
	for _, other := range c.replicas {
		if other.replaces == r {
			other.replaces = nil
			c.terminate(other)
		}
	}
	c.terminate(r)
}

// terminate releases the instance; removal from c.replicas happens in the
// synchronous OnTerminated callback.
func (c *Controller) terminate(r *replica) {
	if r.in.State() == cloud.Terminated {
		return
	}
	_ = c.prov.Terminate(r.in)
}

// reverseReplace drains up to MaxReversePerTick on-demand replicas whose
// market a recovered spot market now undercuts by at least the hysteresis
// margin: a spot replacement launches first, and the on-demand replica is
// terminated only once the replacement boots.
func (c *Controller) reverseReplace() {
	if c.cfg.ReverseHysteresis < 0 {
		return
	}
	started := 0
	for _, r := range c.replicas {
		if started >= c.cfg.MaxReversePerTick {
			return
		}
		if r.spot || r.draining || r.doomed || !r.in.Alive() {
			continue
		}
		_, pickSpot, havePick := c.fastPick()
		if !havePick {
			cands := c.candidates()
			if len(cands) == 0 {
				return
			}
			id, ok := c.cfg.Strategy.Pick(cands, c.target)
			if !ok {
				return
			}
			for _, cand := range cands {
				if cand.ID == id {
					pickSpot = cand.Spot
					break
				}
			}
		}
		odPrice := c.prov.OnDemandPrice(r.in.Market())
		if pickSpot >= (1-c.cfg.ReverseHysteresis)*odPrice {
			return // best spot offer not cheap enough yet
		}
		before := len(c.replicas)
		c.launch(r)
		if len(c.replicas) == before {
			return // launch failed
		}
		r.draining = true
		started++
	}
}

func (c *Controller) callbacks(r *replica) cloud.Callbacks {
	return cloud.Callbacks{
		OnRunning:           func(*cloud.Instance) { c.onRunning(r) },
		OnRevocationWarning: func(_ *cloud.Instance, _ sim.Time) { c.onWarning(r) },
		OnTerminated:        func(_ *cloud.Instance, reason cloud.TerminationReason) { c.onTerminated(r, reason) },
	}
}

func (c *Controller) onRunning(r *replica) {
	c.advance(c.eng.Now())
	if rec := c.eng.Recorder(); rec != nil {
		d := rec.End(r.span, c.eng.Now())
		r.span = 0
		if r.replaces != nil {
			// Reverse replacement latency: request to promoted capacity.
			rec.ObserveMigration("reverse", d)
		}
	}
	if od := r.replaces; od != nil {
		// The reverse replacement is up: retire the on-demand replica it
		// was draining and promote the replacement to regular capacity.
		r.replaces = nil
		c.reverses++
		c.terminate(od)
	}
	c.reconcile() // trim surplus if the target dropped while booting
}

func (c *Controller) onWarning(r *replica) {
	c.advance(c.eng.Now())
	if rec := c.eng.Recorder(); rec != nil {
		rec.Instant(trace.KindWarning, "", r.in.Market().String(), c.eng.Now())
	}
	r.doomed = true
	// The replica serves until the grace deadline, but its capacity is
	// lost: replace it now. The spiking market prices itself out of the
	// candidate list, so the replacement lands elsewhere (or on-demand).
	c.reconcile()
}

func (c *Controller) onTerminated(r *replica, reason cloud.TerminationReason) {
	now := c.eng.Now()
	c.advance(now)
	c.remove(r)
	switch reason {
	case cloud.ReasonRevoked:
		if rec := c.eng.Recorder(); rec != nil {
			rec.Instant(trace.KindLoss, "", r.in.Market().String(), now)
		}
		c.lost++
		c.lossAt[now]++
		c.reconcile()
	case cloud.ReasonNeverGranted:
		if rec := c.eng.Recorder(); rec != nil {
			rec.EndWith(r.span, now, "never-granted")
			r.span = 0
		}
		c.neverGranted++
		if od := r.replaces; od != nil {
			od.draining = false // drain aborted; the on-demand replica stays
		} else {
			c.reconcile()
		}
	case cloud.ReasonUser:
		// Controller-initiated; bookkeeping only.
	}
}

func (c *Controller) remove(r *replica) {
	for i, other := range c.replicas {
		if other == r {
			c.replicas = append(c.replicas[:i], c.replicas[i+1:]...)
			return
		}
	}
}

// advance integrates the capacity and occupancy accounting up to now.
// It must run before every state change (tick, boot, warning,
// termination) so each interval is credited under the state that held.
func (c *Controller) advance(now sim.Time) {
	dt := float64(now - c.lastAccounted)
	if dt <= 0 {
		return
	}
	c.lastAccounted = now
	alive := 0
	for _, r := range c.replicas {
		if !r.in.Alive() {
			continue
		}
		alive++
		u := c.marketSecs[r.in.Market()]
		if r.spot {
			c.spotSecs += dt
			u.SpotSeconds += dt
		} else {
			c.odSecs += dt
			u.OnDemandSeconds += dt
		}
	}
	c.targetSecs += float64(c.target) * dt
	served := alive
	if served > c.target {
		served = c.target
	}
	c.servedSecs += float64(served) * dt
}

// sampleOccupancy appends an occupancy snapshot at most once per hour.
func (c *Controller) sampleOccupancy(now sim.Time) {
	if now-c.lastSample < sim.Hour {
		return
	}
	c.lastSample = now
	pt := OccupancyPoint{At: now, Spot: map[market.ID]int{}}
	for _, r := range c.replicas {
		if !r.in.Alive() {
			continue
		}
		if r.spot {
			pt.Spot[r.in.Market()]++
		} else {
			pt.OnDemand++
		}
	}
	c.occupancy = append(c.occupancy, pt)
}

// Target returns the current replica target.
func (c *Controller) Target() int { return c.target }

// Alive returns the number of currently serving replicas.
func (c *Controller) Alive() int {
	n := 0
	for _, r := range c.replicas {
		if r.in.Alive() {
			n++
		}
	}
	return n
}

// Report returns the run report as of the engine's current time without
// mutating the controller: the interval since the last committed state
// change is folded in as a read-only delta. Keeping Report pure is what
// lets the stepped runtime (Sim, internal/controlplane) snapshot a fleet
// mid-run at any cadence and still produce a final report byte-identical
// to an unsnapshotted run — committing the tail here would split the
// accumulators' float sums at every snapshot point.
func (c *Controller) Report() Report {
	now := c.eng.Now()
	var dTarget, dServed, dSpot, dOD float64
	var dm map[market.ID]MarketUsage
	if dt := float64(now - c.lastAccounted); dt > 0 {
		dm = make(map[market.ID]MarketUsage, 4)
		alive := 0
		for _, r := range c.replicas {
			if !r.in.Alive() {
				continue
			}
			alive++
			u := dm[r.in.Market()]
			if r.spot {
				dSpot += dt
				u.SpotSeconds += dt
			} else {
				dOD += dt
				u.OnDemandSeconds += dt
			}
			dm[r.in.Market()] = u
		}
		dTarget = float64(c.target) * dt
		served := alive
		if served > c.target {
			served = c.target
		}
		dServed = float64(served) * dt
	}
	rep := Report{
		Strategy:             c.cfg.Strategy.Name(),
		Horizon:              sim.Duration(now),
		TargetReplicaSeconds: c.targetSecs + dTarget,
		ServedReplicaSeconds: c.servedSecs + dServed,
		PeakTarget:           c.peakTarget,
		Cost:                 c.prov.Ledger().Total(),
		SpotSeconds:          c.spotSecs + dSpot,
		OnDemandSeconds:      c.odSecs + dOD,
		Launches:             c.launches,
		SpotLaunches:         c.launches - c.odFallbacks,
		OnDemandFallbacks:    c.odFallbacks,
		ReverseReplacements:  c.reverses,
		ReplicasLost:         c.lost,
		NeverGranted:         c.neverGranted,
		ScaleDowns:           c.scaleDowns,
		Occupancy:            c.occupancy,
		MarketSeconds:        map[market.ID]MarketUsage{},
	}
	// All-on-demand baseline: serving the full target from the cheapest
	// on-demand market, billed continuously.
	odRate := c.prov.OnDemandPrice(c.cheapestOnDemand())
	rep.BaselineCost = rep.TargetReplicaSeconds / float64(sim.Hour) * odRate
	for id, u := range c.marketSecs {
		m := *u
		d := dm[id]
		m.SpotSeconds += d.SpotSeconds
		m.OnDemandSeconds += d.OnDemandSeconds
		rep.MarketSeconds[id] = m
	}
	times := make([]sim.Time, 0, len(c.lossAt))
	for t := range c.lossAt {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		rep.LossEvents = append(rep.LossEvents, LossEvent{At: t, Lost: c.lossAt[t]})
	}
	return rep
}
