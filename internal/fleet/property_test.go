package fleet

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// propertyMarkets restricts a fleet to the "small" market of every
// region: identical replica capacity everywhere, correlated only through
// the generator's shared regional/global shocks.
func propertyMarkets() []market.ID {
	var ids []market.ID
	for _, r := range market.DefaultRegions() {
		ids = append(ids, market.ID{Region: r.Name, Type: "small"})
	}
	return ids
}

// TestDiversificationReducesSimultaneousLoss is the correlation property
// test: under the generator's shared-shock spikes, capping per-market
// share (Diversified) must strictly reduce both the variance of
// replicas lost per window and the worst simultaneous loss, relative to
// LowestPrice concentrating the whole fleet in the cheapest market.
func TestDiversificationReducesSimultaneousLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed fleet simulation")
	}
	const (
		horizon = 10 * sim.Day
		window  = 6 * sim.Hour
	)
	seeds := []int64{1, 2, 3, 4, 5}
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = horizon

	run := func(s Strategy) []Report {
		cfg := Config{
			Markets:  propertyMarkets(),
			Strategy: s,
			Demand:   ConstantDemand(9),
			Planner:  LinearPlanner{PerReplica: 1},
			// A low bid keeps revocations frequent enough to measure.
			BidMultiple: 1.3,
		}
		reps, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, horizon, seeds)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return reps
	}
	lp := run(LowestPrice{})
	div := run(Diversified{})

	maxLoss := func(reps []Report) int {
		m := 0
		for _, r := range reps {
			if l := r.MaxSimultaneousLoss(); l > m {
				m = l
			}
		}
		return m
	}
	events := func(reps []Report) int {
		n := 0
		for _, r := range reps {
			n += len(r.LossEvents)
		}
		return n
	}
	if events(lp) == 0 {
		t.Fatal("LowestPrice saw no revocations; the property is vacuous — lower the bid multiple")
	}
	lpVar := PooledLossVariance(lp, window)
	divVar := PooledLossVariance(div, window)
	t.Logf("lowest-price: %d events, max simultaneous %d, loss variance %.3f",
		events(lp), maxLoss(lp), lpVar)
	t.Logf("diversified:  %d events, max simultaneous %d, loss variance %.3f",
		events(div), maxLoss(div), divVar)
	if divVar >= lpVar {
		t.Fatalf("diversification did not reduce loss variance: %.3f >= %.3f", divVar, lpVar)
	}
	if maxLoss(div) > maxLoss(lp) {
		t.Fatalf("diversified worst simultaneous loss %d exceeds lowest-price %d",
			maxLoss(div), maxLoss(lp))
	}
	// Diversification must still beat the all-on-demand baseline.
	for _, r := range div {
		if r.NormalizedCost() >= 1 {
			t.Fatalf("seed %d: diversified cost %.2f not under baseline %.2f",
				r.Seed, r.Cost, r.BaselineCost)
		}
	}
}
