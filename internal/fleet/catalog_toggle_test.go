package fleet

import (
	"reflect"
	"testing"

	"spothost/internal/catalog"
	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// smallMarkets returns the four regional "small" markets of the default
// universe, the single-type fleet's candidate set.
func smallMarkets() []market.ID {
	var ids []market.ID
	for _, rs := range market.DefaultRegions() {
		ids = append(ids, market.ID{Region: rs.Name, Type: "small"})
	}
	return ids
}

// TestCatalogToggleEquivalence pins the catalog's zero-cost abstraction
// claim: a fleet over a single-type catalog (one entry, one capacity
// unit) must produce reports byte-identical to the pre-catalog controller
// over the same markets — per-unit normalization multiplies by exactly
// 1.0, the unit-weighted envelope shares the legacy memo entry, and all
// capacity accounting collapses to replica counts.
func TestCatalogToggleEquivalence(t *testing.T) {
	single := catalog.MustNew([]catalog.Entry{
		{Name: "small", VCPU: 1, MemoryGB: 1.7, Units: 1, OnDemand: 0.06},
	})
	mcfg := market.DefaultConfig(0)
	seeds := []int64{1, 2, 3}
	horizon := 15 * sim.Day

	for _, strat := range []Strategy{LowestPrice{}, Diversified{}, StabilityOptimized{}} {
		demand, err := NewDiurnalDemand(DefaultDiurnalConfig(horizon, 0))
		if err != nil {
			t.Fatal(err)
		}
		legacy := Config{
			Markets:  smallMarkets(),
			Strategy: strat,
			Demand:   demand,
			Planner:  LinearPlanner{PerReplica: 6},
		}
		typed := legacy
		typed.Markets = nil // resolved from the catalog: the same 4 markets
		typed.Catalog = single
		typed.AnchorType = "small"

		want, err := RunSeeds(mcfg, cloud.DefaultParams(0), legacy, horizon, seeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunSeeds(mcfg, cloud.DefaultParams(0), typed, horizon, seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seeds {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("%s seed %d: catalog on/off reports differ:\n off: %+v\n  on: %+v",
					want[i].Strategy, seeds[i], want[i], got[i])
			}
		}
	}
}

// TestCatalogExplicitMarketsEquivalence covers the explicit-Markets path:
// passing the same market list with a full legacy catalog (all four paper
// types, anchored at the type in use) must also be byte-identical, since
// every configured market is single-typed at one unit.
func TestCatalogExplicitMarketsEquivalence(t *testing.T) {
	mcfg := market.DefaultConfig(0)
	seeds := []int64{4, 5}
	horizon := 10 * sim.Day
	demand, err := NewDiurnalDemand(DefaultDiurnalConfig(horizon, 0))
	if err != nil {
		t.Fatal(err)
	}
	legacy := Config{
		Markets:  smallMarkets(),
		Strategy: Diversified{},
		Demand:   demand,
		Planner:  LinearPlanner{PerReplica: 6},
	}
	typed := legacy
	typed.Catalog = catalog.Legacy()
	typed.AnchorType = "small"

	want, err := RunSeeds(mcfg, cloud.DefaultParams(0), legacy, horizon, seeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSeeds(mcfg, cloud.DefaultParams(0), typed, horizon, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("seed %d: explicit-markets catalog reports differ", seeds[i])
		}
	}
}

// TestCatalogMixedPlacement runs a fleet over the full default catalog
// and checks heterogeneous placement actually engages: replicas land on
// more than one instance type, capacity accounting stays consistent in
// units, and the served fraction stays high.
func TestCatalogMixedPlacement(t *testing.T) {
	mcfg := market.DefaultConfig(3)
	mcfg.Types = catalog.Default().TypeSpecs()
	horizon := 10 * sim.Day
	demand, err := NewDiurnalDemand(DefaultDiurnalConfig(horizon, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Strategy:   Diversified{},
		Demand:     demand,
		Planner:    LinearPlanner{PerReplica: 6},
		Catalog:    catalog.Default(),
		AnchorType: "small",
	}
	reps, err := RunSeeds(mcfg, cloud.DefaultParams(0), cfg, horizon, []int64{9})
	if err != nil {
		t.Fatal(err)
	}
	rep := reps[0]
	types := map[market.InstanceType]bool{}
	for id, u := range rep.MarketSeconds {
		if u.SpotSeconds+u.OnDemandSeconds > 0 {
			types[id.Type] = true
		}
	}
	if len(types) < 2 {
		t.Fatalf("mixed catalog placed on %d instance types, want >= 2 (markets: %v)", len(types), types)
	}
	if rep.TargetReplicaSeconds <= 0 {
		t.Fatal("no target unit-seconds accumulated")
	}
	if shortfall := rep.CapacityShortfall(); shortfall > 0.05 {
		t.Fatalf("capacity shortfall %.3f, want <= 0.05", shortfall)
	}
	if rep.Cost <= 0 || rep.BaselineCost <= 0 {
		t.Fatalf("degenerate costs: %v / baseline %v", rep.Cost, rep.BaselineCost)
	}
}

// TestCatalogConfigValidation exercises the new constructor errors.
func TestCatalogConfigValidation(t *testing.T) {
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 2 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, cloud.DefaultParams(0))
	demand, err := NewDiurnalDemand(DefaultDiurnalConfig(2*sim.Day, 0))
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Strategy: LowestPrice{},
		Demand:   demand,
		Planner:  LinearPlanner{PerReplica: 6},
	}

	missingAnchor := base
	missingAnchor.Catalog = catalog.Legacy()
	if _, err := New(prov, missingAnchor); err == nil {
		t.Error("Catalog without AnchorType accepted")
	}

	unknownAnchor := base
	unknownAnchor.Catalog = catalog.Legacy()
	unknownAnchor.AnchorType = "quantum"
	if _, err := New(prov, unknownAnchor); err == nil {
		t.Error("unknown AnchorType accepted")
	}

	anchorOnly := base
	anchorOnly.AnchorType = "small"
	if _, err := New(prov, anchorOnly); err == nil {
		t.Error("AnchorType without a Catalog accepted")
	}

	weaker := base
	weaker.Catalog = catalog.Legacy()
	weaker.AnchorType = "xlarge"
	weaker.Markets = smallMarkets()
	if _, err := New(prov, weaker); err == nil {
		t.Error("markets weaker than the anchor accepted")
	}

	unknownType := base
	unknownType.Catalog = catalog.MustNew([]catalog.Entry{
		{Name: "medium", VCPU: 2, MemoryGB: 3.75, Units: 2, OnDemand: 0.12},
	})
	unknownType.AnchorType = "medium"
	unknownType.Markets = smallMarkets() // "small" missing from the catalog
	if _, err := New(prov, unknownType); err == nil {
		t.Error("markets with catalog-unknown types accepted")
	}
}
