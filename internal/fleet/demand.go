package fleet

import (
	"fmt"
	"math"

	"spothost/internal/randx"
	"spothost/internal/sim"
)

// Demand is a deterministic load trace: At returns the offered load
// (concurrent users / emulated browsers) at virtual time t. Implementations
// must be safe for concurrent use — one Demand is typically shared by every
// (strategy, seed) cell of a parallel fleet experiment.
type Demand interface {
	At(t sim.Time) float64
}

// ConstantDemand is a flat load trace.
type ConstantDemand float64

// At implements Demand.
func (d ConstantDemand) At(sim.Time) float64 { return float64(d) }

// DiurnalConfig parameterizes a tracegen-style synthetic demand curve: a
// daily base/peak cycle with smooth shoulders, modulated by a slowly
// wandering AR(1) noise factor — the fleet-layer analogue of the market
// generator's base-price wobble.
type DiurnalConfig struct {
	// Base and Peak are the off-peak and on-peak loads.
	Base float64
	Peak float64
	// PeakStartHour and PeakEndHour bound the daily peak window, in hours
	// of the day [0, 24); RampHours is the width of the smooth shoulder on
	// each side.
	PeakStartHour float64
	PeakEndHour   float64
	RampHours     float64
	// NoiseCV is the coefficient of variation of the lognormal noise
	// factor; NoiseAR is its per-step AR(1) coefficient (step = 30 min).
	NoiseCV float64
	NoiseAR float64
	// Horizon bounds the precomputed noise series; At clamps beyond it.
	Horizon sim.Duration
	Seed    int64
}

// DefaultDiurnalConfig returns a modest e-commerce-style curve: 12
// concurrent users off-peak, 48 during the 10:00-18:00 peak, with ~10 %
// noise.
func DefaultDiurnalConfig(horizon sim.Duration, seed int64) DiurnalConfig {
	return DiurnalConfig{
		Base:          12,
		Peak:          48,
		PeakStartHour: 10,
		PeakEndHour:   18,
		RampHours:     2,
		NoiseCV:       0.10,
		NoiseAR:       0.9,
		Horizon:       horizon,
		Seed:          seed,
	}
}

// DiurnalDemand is the precomputed curve; construct with NewDiurnalDemand.
// At is a pure function of t, so a single instance may be shared across
// concurrent simulation cells.
type DiurnalDemand struct {
	cfg   DiurnalConfig
	step  sim.Duration
	noise []float64 // lognormal multipliers on the precomputed grid
}

// NewDiurnalDemand validates the config and precomputes the noise series.
func NewDiurnalDemand(cfg DiurnalConfig) (*DiurnalDemand, error) {
	switch {
	case cfg.Base <= 0 || cfg.Peak < cfg.Base:
		return nil, fmt.Errorf("fleet: demand needs 0 < Base <= Peak, got %v/%v", cfg.Base, cfg.Peak)
	case cfg.PeakStartHour < 0 || cfg.PeakEndHour > 24 || cfg.PeakEndHour <= cfg.PeakStartHour:
		return nil, fmt.Errorf("fleet: bad peak window [%v, %v)", cfg.PeakStartHour, cfg.PeakEndHour)
	case cfg.RampHours < 0:
		return nil, fmt.Errorf("fleet: negative ramp")
	case cfg.NoiseCV < 0:
		return nil, fmt.Errorf("fleet: negative noise CV")
	case cfg.NoiseAR < 0 || cfg.NoiseAR >= 1:
		return nil, fmt.Errorf("fleet: NoiseAR must be in [0,1)")
	case cfg.Horizon <= 0:
		return nil, fmt.Errorf("fleet: demand horizon must be positive")
	}
	d := &DiurnalDemand{cfg: cfg, step: 30 * sim.Minute}
	n := int(cfg.Horizon/d.step) + 2
	d.noise = make([]float64, n)
	if cfg.NoiseCV == 0 {
		for i := range d.noise {
			d.noise[i] = 1
		}
		return d, nil
	}
	rng := randx.Derive(cfg.Seed, "fleet/demand")
	sigma2 := math.Log(1 + cfg.NoiseCV*cfg.NoiseCV)
	sigma := math.Sqrt(sigma2)
	x := rng.NormFloat64()
	for i := range d.noise {
		if i > 0 {
			x = cfg.NoiseAR*x + math.Sqrt(1-cfg.NoiseAR*cfg.NoiseAR)*rng.NormFloat64()
		}
		// Lognormal with unit mean: E[exp(sigma x - sigma^2/2)] = 1.
		d.noise[i] = math.Exp(sigma*x - sigma2/2)
	}
	return d, nil
}

// At implements Demand.
func (d *DiurnalDemand) At(t sim.Time) float64 {
	c := d.cfg
	hour := math.Mod(float64(t)/sim.Hour, 24)
	if hour < 0 {
		hour += 24
	}
	// Trapezoid with smooth (raised-cosine) shoulders of width RampHours.
	level := 0.0
	switch {
	case hour >= c.PeakStartHour && hour < c.PeakEndHour:
		level = 1
	case c.RampHours > 0 && hour >= c.PeakStartHour-c.RampHours && hour < c.PeakStartHour:
		level = 0.5 * (1 - math.Cos(math.Pi*(hour-(c.PeakStartHour-c.RampHours))/c.RampHours))
	case c.RampHours > 0 && hour >= c.PeakEndHour && hour < c.PeakEndHour+c.RampHours:
		level = 0.5 * (1 + math.Cos(math.Pi*(hour-c.PeakEndHour)/c.RampHours))
	}
	load := c.Base + (c.Peak-c.Base)*level
	i := int(t / d.step)
	if i < 0 {
		i = 0
	}
	if i >= len(d.noise) {
		i = len(d.noise) - 1
	}
	return load * d.noise[i]
}
