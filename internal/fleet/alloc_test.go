package fleet

import (
	"context"
	"testing"

	"spothost/internal/catalog"
	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

// newCatalogSim builds a 30-day typed-catalog fleet simulation over a
// pre-generated universe, the same shape as BenchmarkFleetMonthCatalog.
func newCatalogSim(t testing.TB, set *market.Set) *Sim {
	t.Helper()
	cat := catalog.Default()
	demand, err := NewDiurnalDemand(DefaultDiurnalConfig(30*sim.Day, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(set, cloud.DefaultParams(1), Config{
		Catalog:    cat,
		AnchorType: "small",
		Strategy:   Diversified{},
		Demand:     demand,
		Planner:    LinearPlanner{PerReplica: 6},
	}, 30*sim.Day, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func catalogSet(t testing.TB) *market.Set {
	t.Helper()
	mcfg := market.DefaultConfig(0)
	mcfg.Types = catalog.Default().TypeSpecs()
	mcfg.Seed = 1
	set, err := market.SharedCache().Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCandidatesNoAllocSteadyState pins the strategy-input fast path:
// after the first tick, candidates() reuses the controller-owned scratch
// slice and occupancy map, so building the candidate list for the full
// catalog allocates nothing.
func TestCandidatesNoAllocSteadyState(t *testing.T) {
	set := catalogSet(t)
	s := newCatalogSim(t, set)
	// Run a few days so the fleet is populated and the scratch buffers
	// have reached their steady-state capacity.
	if _, err := s.Step(context.Background(), 3*sim.Day); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.ctrl.candidates(allSizes)
	})
	if allocs != 0 {
		t.Fatalf("candidates() allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

// TestCatalogMonthAllocBudget pins the whole-run allocation count for a
// 30-day typed-catalog fleet with the universe pre-generated. Before the
// scratch-buffer reuse in candidates()/spotInMarket() this run allocated
// ~32k objects (a fresh slice and map per autoscaling tick, ~8.6k ticks);
// it now sits near 15k. The ceiling leaves headroom for incidental churn
// while still catching a reintroduced per-tick allocation, which would
// add tens of thousands.
func TestCatalogMonthAllocBudget(t *testing.T) {
	set := catalogSet(t)
	allocs := testing.AllocsPerRun(1, func() {
		s := newCatalogSim(t, set)
		if _, err := s.Step(context.Background(), s.Horizon()); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 20000
	if allocs > budget {
		t.Fatalf("30-day catalog fleet run allocates %.0f objects, budget %d", allocs, budget)
	}
}
