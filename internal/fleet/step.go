package fleet

import (
	"context"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// Sim is a resumable fleet simulation: the engine/provider/controller
// stack of Run, split so a caller can advance it in bounded slices of
// virtual time instead of one blocking run to the horizon. It exists for
// the control plane's sharded runtime, where one goroutine time-slices
// many registered fleets; Run and friends are now thin wrappers over it.
//
// Slicing is observationally invisible: events fire in the same order at
// the same virtual times whether the run is advanced in one Step or many,
// and Report never mutates controller state, so the final report is
// byte-identical to an unsliced run no matter how often the caller
// stepped or snapshotted. A Sim is not safe for concurrent use — exactly
// one goroutine may drive it at a time.
type Sim struct {
	eng     *sim.Engine
	ctrl    *Controller
	rec     *trace.Recorder
	ob      *obs.Recorder
	horizon sim.Duration
	seed    int64
	done    bool
}

// NewSim builds a resumable fleet simulation over the price set: the
// controller is started (its first autoscaling tick runs at virtual time
// zero) but no events execute until the first Step. A zero, negative, or
// over-long horizon is clamped to the traces' extent, exactly as in Run.
func NewSim(set *market.Set, cloudParams cloud.Params, cfg Config,
	horizon sim.Duration, rec *trace.Recorder) (*Sim, error) {
	return NewSimObs(set, cloudParams, cfg, horizon, rec, nil)
}

// NewSimObs is NewSim with a telemetry recorder attached to the run's
// engine: the controller's capacity accounting, its decision ledger and
// the provider's billing all record into it. A nil recorder is exactly
// NewSim — the disabled path adds no allocations (TestObsOffAllocs).
func NewSimObs(set *market.Set, cloudParams cloud.Params, cfg Config,
	horizon sim.Duration, rec *trace.Recorder, ob *obs.Recorder) (*Sim, error) {

	if horizon <= 0 || horizon > set.Horizon() {
		horizon = set.Horizon()
	}
	eng := sim.NewEngine()
	eng.SetRecorder(rec)
	eng.SetObs(ob)
	prov := cloud.NewProvider(eng, set, cloudParams)
	c, err := New(prov, cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	return &Sim{
		eng:     eng,
		ctrl:    c,
		rec:     rec,
		ob:      ob,
		horizon: horizon,
		seed:    cloudParams.Seed,
	}, nil
}

// Step advances the simulation to virtual time until (clamped to the
// horizon) and reports whether the run is complete. A canceled ctx aborts
// the slice within one engine cancellation-poll batch and returns ctx's
// error with the clock at the last executed event; calling Step again
// resumes from there. Step on a finished Sim is a no-op returning true.
func (s *Sim) Step(ctx context.Context, until sim.Time) (bool, error) {
	if s.done {
		return true, nil
	}
	if until > s.horizon {
		until = s.horizon
	}
	if err := s.eng.RunUntilCtx(ctx, until); err != nil {
		return false, err
	}
	if until >= s.horizon {
		s.done = true
		s.rec.CloseOpen(s.eng.Now())
		s.ctrl.finalizeObs(s.eng.Now())
	}
	return s.done, nil
}

// Obs returns the simulation's telemetry recorder, nil when telemetry is
// off.
func (s *Sim) Obs() *obs.Recorder { return s.ob }

// Timeline snapshots the telemetry timeline as of the current virtual
// time (see Controller.ObsTimeline); the zero Timeline when telemetry is
// off.
func (s *Sim) Timeline() obs.Timeline { return s.ctrl.ObsTimeline() }

// Now returns the simulation's current virtual time.
func (s *Sim) Now() sim.Time { return s.eng.Now() }

// Horizon returns the clamped run horizon.
func (s *Sim) Horizon() sim.Duration { return s.horizon }

// Done reports whether the run has reached its horizon.
func (s *Sim) Done() bool { return s.done }

// Report snapshots the fleet report as of the current virtual time. It is
// safe to call between any two Steps (the controller is not mutated), and
// after the final Step it returns the same report Run would have.
func (s *Sim) Report() Report {
	rep := s.ctrl.Report()
	rep.Seed = s.seed
	return rep
}
