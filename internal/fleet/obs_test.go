package fleet

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/sim"
)

// obsSeriesByName indexes a timeline's series for assertions.
func obsSeriesByName(tl obs.Timeline) map[string]obs.SeriesData {
	out := map[string]obs.SeriesData{}
	for _, sd := range tl.Series {
		out[sd.Name] = sd
	}
	return out
}

// relClose reports whether two sums agree to a tiny relative tolerance
// (the timeline re-sums the same float additions in bucket order, so
// only associativity-level drift is acceptable).
func relClose(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= 1e-9*scale
}

// TestObsTimelineMatchesReport is the downsampling soundness property:
// however coarse the merged buckets get, the timeline integrals must
// reproduce the exact accounting sums of the fleet report — total cost
// from the billing ledger, served/target replica-seconds from the
// controller, and shortfall as their difference — across random fleets
// and seeds.
func TestObsTimelineMatchesReport(t *testing.T) {
	horizon := 6 * sim.Day
	for _, seed := range []int64{3, 17, 42} {
		for _, strat := range []Strategy{LowestPrice{}, Diversified{}} {
			mcfg := market.DefaultConfig(seed)
			mcfg.Horizon = horizon
			set, err := market.Generate(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg := steppedTestConfig(t, horizon, seed)
			cfg.Strategy = strat
			// A tight budget forces several compactions over six days.
			ob := obs.NewRecorder("t", obs.Config{Budget: 64, Width: 300})
			rep, err := RunObsCtx(context.Background(), set, cloud.DefaultParams(seed), cfg, horizon, nil, ob)
			if err != nil {
				t.Fatal(err)
			}
			by := obsSeriesByName(ob.SnapshotFinal())
			if got, want := by["cost_dollars"].Integral, rep.Cost; !relClose(got, want) {
				t.Fatalf("seed %d %s: cost integral %g != report cost %g", seed, strat.Name(), got, want)
			}
			if got, want := by["served_units"].Integral, rep.ServedReplicaSeconds; !relClose(got, want) {
				t.Fatalf("seed %d %s: served integral %g != %g", seed, strat.Name(), got, want)
			}
			if got, want := by["target_units"].Integral, rep.TargetReplicaSeconds; !relClose(got, want) {
				t.Fatalf("seed %d %s: target integral %g != %g", seed, strat.Name(), got, want)
			}
			wantSf := rep.TargetReplicaSeconds - rep.ServedReplicaSeconds
			if got := by["shortfall_units"].Integral; !relClose(got, wantSf) {
				t.Fatalf("seed %d %s: shortfall integral %g != %g", seed, strat.Name(), got, wantSf)
			}
			// Per-market spend partitions total cost.
			var spend float64
			for name, sd := range by {
				if len(name) > 6 && name[:6] == "spend:" {
					spend += sd.Integral
				}
			}
			if !relClose(spend, rep.Cost) {
				t.Fatalf("seed %d %s: per-market spend %g != cost %g", seed, strat.Name(), spend, rep.Cost)
			}
			if got, want := by["launches"].Integral, float64(rep.Launches); got != want {
				t.Fatalf("seed %d %s: launches %g != %g", seed, strat.Name(), got, want)
			}
		}
	}
}

// TestObsToggleByteIdentical pins the observer effect away: attaching a
// telemetry recorder must not change the simulation. The report with obs
// on must be byte-identical (under JSON encoding) to the report with obs
// off.
func TestObsToggleByteIdentical(t *testing.T) {
	const seed = 9
	horizon := 8 * sim.Day
	mcfg := market.DefaultConfig(seed)
	mcfg.Horizon = horizon
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(set, cloud.DefaultParams(seed), steppedTestConfig(t, horizon, seed), horizon)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.NewRecorder("t", obs.Config{})
	on, err := RunObsCtx(context.Background(), set, cloud.DefaultParams(seed),
		steppedTestConfig(t, horizon, seed), horizon, nil, ob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("obs-on report differs from obs-off:\noff: %s\non:  %s", a, b)
	}
	if len(ob.Ledger()) == 0 {
		t.Fatal("obs-on run recorded no decisions")
	}
}

// TestObsLedgerJustifications checks the ledger carries the justifying
// inputs: every record is schema-stamped, launch-classed, and quotes the
// envelope argmin and quota state of its decision instant.
func TestObsLedgerJustifications(t *testing.T) {
	const seed = 11
	horizon := 6 * sim.Day
	mcfg := market.DefaultConfig(seed)
	mcfg.Horizon = horizon
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.NewRecorder("t", obs.Config{})
	rep, err := RunObsCtx(context.Background(), set, cloud.DefaultParams(seed),
		steppedTestConfig(t, horizon, seed), horizon, nil, ob)
	if err != nil {
		t.Fatal(err)
	}
	ds := ob.Ledger()
	if len(ds) != rep.Launches {
		t.Fatalf("ledger has %d records, report counted %d launches", len(ds), rep.Launches)
	}
	classes := map[string]bool{}
	var last float64
	for _, d := range ds {
		if d.Schema != obs.LedgerSchema {
			t.Fatalf("record missing schema stamp: %+v", d)
		}
		if d.At < last {
			t.Fatalf("ledger out of order: %g after %g", d.At, last)
		}
		last = d.At
		switch d.Action {
		case "spot", "reverse", "rebalance", "downsize":
			if d.Bid <= 0 || d.Price <= 0 {
				t.Fatalf("spot-class record without bid/price: %+v", d)
			}
		case "on-demand", "bridge":
			if d.Bid != 0 {
				t.Fatalf("on-demand-class record carries a bid: %+v", d)
			}
		default:
			t.Fatalf("unknown action %q", d.Action)
		}
		if d.Market == "" || d.Units <= 0 || d.TargetUnits <= 0 || d.QuotaUnits <= 0 {
			t.Fatalf("record missing justifying inputs: %+v", d)
		}
		classes[d.Action] = true
	}
	if !classes["spot"] {
		t.Fatal("no plain spot launches recorded")
	}
}

// TestObsBoundedMemory pins the fixed-memory contract: a multi-day run
// against a tiny bucket budget must never exceed it, in any series.
func TestObsBoundedMemory(t *testing.T) {
	const seed = 4
	horizon := 10 * sim.Day
	mcfg := market.DefaultConfig(seed)
	mcfg.Horizon = horizon
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 16
	ob := obs.NewRecorder("t", obs.Config{Budget: budget, Width: 60})
	if _, err := RunObsCtx(context.Background(), set, cloud.DefaultParams(seed),
		steppedTestConfig(t, horizon, seed), horizon, nil, ob); err != nil {
		t.Fatal(err)
	}
	for _, sd := range ob.SnapshotFinal().Series {
		if len(sd.Buckets) > budget {
			t.Fatalf("series %s holds %d buckets, budget %d", sd.Name, len(sd.Buckets), budget)
		}
	}
}

// TestObsSteppedTimelineIdentity: telemetry must be slicing-invariant
// like the report — a run stepped in uneven slices (with mid-run
// timeline snapshots) exports the same final timeline and ledger as an
// unsliced run.
func TestObsSteppedTimelineIdentity(t *testing.T) {
	const seed = 5
	horizon := 6 * sim.Day
	mcfg := market.DefaultConfig(seed)
	mcfg.Horizon = horizon
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sliced bool) ([]byte, []byte) {
		ob := obs.NewRecorder("t", obs.Config{Budget: 64, Width: 300})
		s, err := NewSimObs(set, cloud.DefaultParams(seed), steppedTestConfig(t, horizon, seed), horizon, nil, ob)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if sliced {
			var until sim.Time
			for !s.Done() {
				until += 7 * sim.Hour
				if _, err := s.Step(ctx, until); err != nil {
					t.Fatal(err)
				}
				_ = s.Timeline() // mid-run snapshots must not perturb the run
			}
		} else if _, err := s.Step(ctx, horizon); err != nil {
			t.Fatal(err)
		}
		tl, err := json.Marshal(ob.SnapshotFinal())
		if err != nil {
			t.Fatal(err)
		}
		var led []byte
		for _, d := range ob.Ledger() {
			if led, err = d.AppendNDJSON(led); err != nil {
				t.Fatal(err)
			}
		}
		return tl, led
	}
	tlA, ledA := run(false)
	tlB, ledB := run(true)
	if string(tlA) != string(tlB) {
		t.Fatalf("sliced timeline differs:\nunsliced: %s\nsliced:   %s", tlA, tlB)
	}
	if string(ledA) != string(ledB) {
		t.Fatal("sliced ledger differs from unsliced")
	}
}
