package fleet

import (
	"fmt"
	"math"
	"sync"

	"spothost/internal/tpcw"
)

// Planner converts an offered load into a target replica count — the
// SLO-driven half of autoscaling. Implementations must be deterministic
// pure functions of the load and safe for concurrent use (one Planner is
// shared across parallel simulation cells).
type Planner interface {
	Replicas(load float64) int
}

// LinearPlanner is the simplest capacity model: one replica per
// PerReplica units of load, rounded up. Useful for tests and for fleets
// whose per-replica capacity is known out of band.
type LinearPlanner struct {
	// PerReplica is the load one replica can absorb.
	PerReplica float64
}

// Replicas implements Planner.
func (p LinearPlanner) Replicas(load float64) int {
	if p.PerReplica <= 0 || load <= 0 {
		return 1
	}
	n := int(math.Ceil(load / p.PerReplica))
	if n < 1 {
		n = 1
	}
	return n
}

// TPCWPlanner sizes the fleet with the Section-6 queueing model: the
// target replica count for a load is the smallest count whose simulated
// mean response time meets TargetMs (tpcw.PlanCapacity). Loads are
// quantized up to a grid and plans are memoized, so a month-long
// controller run triggers only a handful of queueing simulations.
type TPCWPlanner struct {
	cfg         tpcw.Config
	targetMs    float64
	maxReplicas int
	quantum     float64

	mu   sync.Mutex
	memo map[int]int
}

// NewTPCWPlanner builds a planner over the base workload config (EBs is
// overridden per lookup). quantum is the load grid in EBs; a non-positive
// value means 8.
func NewTPCWPlanner(cfg tpcw.Config, targetMs float64, maxReplicas int, quantum float64) (*TPCWPlanner, error) {
	if targetMs <= 0 {
		return nil, fmt.Errorf("fleet: response-time target must be positive, got %v", targetMs)
	}
	if maxReplicas <= 0 {
		return nil, fmt.Errorf("fleet: maxReplicas must be positive")
	}
	if quantum <= 0 {
		quantum = 8
	}
	probe := cfg
	probe.EBs = 1
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return &TPCWPlanner{
		cfg:         cfg,
		targetMs:    targetMs,
		maxReplicas: maxReplicas,
		quantum:     quantum,
		memo:        map[int]int{},
	}, nil
}

// DefaultTPCWPlanner returns the planner used by the Fleet experiment: the
// paper's CPU-bound ordering mix on nested VMs, sized for a 250 ms mean
// response-time target, with a shortened measurement window (the planner
// runs the queueing model many times, and capacity plans are insensitive
// to window length beyond a few hundred seconds).
func DefaultTPCWPlanner(maxReplicas int, seed int64) (*TPCWPlanner, error) {
	cfg := tpcw.DefaultConfig(1, false, true, seed)
	cfg.Duration = 600
	cfg.Warmup = 120
	return NewTPCWPlanner(cfg, 250, maxReplicas, 8)
}

// Replicas implements Planner: the plan for the load rounded up to the
// quantization grid. When even maxReplicas misses the target the planner
// returns maxReplicas (degraded but maximal capacity).
func (p *TPCWPlanner) Replicas(load float64) int {
	ebs := int(math.Ceil(load/p.quantum)) * int(p.quantum)
	if ebs < 1 {
		ebs = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := p.memo[ebs]; ok {
		return n
	}
	cfg := p.cfg
	cfg.EBs = ebs
	plan, err := tpcw.PlanCapacity(cfg, p.targetMs, p.maxReplicas)
	n := p.maxReplicas
	if err == nil {
		n = plan.Replicas
	}
	p.memo[ebs] = n
	return n
}
