// Package scenario loads declarative JSON descriptions of hosting studies
// — which services run where, under which policy and mechanism, over which
// price data, with optional per-service revenue models — and executes them
// as a portfolio. It is the configuration surface of cmd/portfolio, and
// the easiest way for a downstream user to describe an evaluation without
// writing Go.
//
// A minimal scenario:
//
//	{
//	  "seed": 42,
//	  "days": 30,
//	  "services": [
//	    {"name": "shop", "region": "us-east-1a", "type": "medium",
//	     "policy": "proactive", "mechanism": "ckpt-lr-live"}
//	  ]
//	}
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"spothost/internal/catalog"
	"spothost/internal/cloud"
	"spothost/internal/econ"
	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/replay"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/tpcw"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

// RevenueDef prices a service's traffic for econ analysis.
type RevenueDef struct {
	RequestsPerSecond  float64 `json:"requests_per_second"`
	RevenuePerRequest  float64 `json:"revenue_per_request"`
	DegradedLossFactor float64 `json:"degraded_loss_factor"`
}

// ServiceDef describes one hosted service.
type ServiceDef struct {
	Name      string   `json:"name"`
	Region    string   `json:"region"`
	Type      string   `json:"type"`
	Policy    string   `json:"policy"`    // on-demand | reactive | proactive | pure-spot
	Mechanism string   `json:"mechanism"` // ckpt | ckpt-lr | ckpt-live | ckpt-lr-live | naive
	VMs       int      `json:"vms"`       // >0: fleet of unit VMs; 0: one market-sized VM
	Markets   []string `json:"markets"`   // "region/type" candidates; empty = home only

	BidMultiple      float64 `json:"bid_multiple"`
	Hysteresis       float64 `json:"hysteresis"`
	StabilityPenalty float64 `json:"stability_penalty"`
	Pessimistic      bool    `json:"pessimistic"`

	StartHour float64 `json:"start_hour"` // virtual launch time, hours
	StopHour  float64 `json:"stop_hour"`  // 0 = run to the end

	Revenue *RevenueDef `json:"revenue"`
}

// FleetDef describes one replicated, autoscaled fleet (internal/fleet):
// a demand-driven replica count spread across spot markets, with
// on-demand fallback and reverse replacement.
type FleetDef struct {
	Name     string   `json:"name"`
	Strategy string   `json:"strategy"` // lowest-price | diversified | stability
	Markets  []string `json:"markets"`  // "region/type" candidates; empty = every market

	// BaseLoad and PeakLoad shape the diurnal demand curve (emulated
	// browsers; defaults 300/1200). PerReplicaLoad sizes replicas with a
	// linear capacity model; TargetMs > 0 instead plans capacity with the
	// TPC-W queueing model at that mean-response-time target.
	BaseLoad       float64 `json:"base_load"`
	PeakLoad       float64 `json:"peak_load"`
	PerReplicaLoad float64 `json:"per_replica_load"`
	TargetMs       float64 `json:"target_ms"`

	TickMinutes       float64 `json:"tick_minutes"`
	BidMultiple       float64 `json:"bid_multiple"`
	MaxReplicas       int     `json:"max_replicas"`
	ReverseHysteresis float64 `json:"reverse_hysteresis"`

	// Catalog turns on heterogeneous placement: "legacy" (the paper's four
	// types) or "default" (the ten-type default catalog), or "custom" with
	// CatalogEntries. AnchorType names the capacity anchor and is required
	// with a catalog; every replica is a compatible type at least as
	// powerful, and capacity is planned in the anchor's units.
	Catalog        string            `json:"catalog"`
	CatalogEntries []CatalogEntryDef `json:"catalog_entries"`
	AnchorType     string            `json:"anchor_type"`
}

// CatalogEntryDef is one custom catalog row (see catalog.Entry): units
// must be a power of two, vcpu >= 1, memory and on-demand price positive.
type CatalogEntryDef struct {
	Name     string  `json:"name"`
	VCPU     int     `json:"vcpu"`
	MemoryGB float64 `json:"memory_gb"`
	Units    int     `json:"units"`
	OnDemand float64 `json:"on_demand"`
}

// Scenario is the top-level document.
type Scenario struct {
	Seed int64   `json:"seed"`
	Days float64 `json:"days"`

	// Traces optionally replays a price file instead of generating
	// synthetic prices. Format: csv | aws-json | aws-legacy.
	Traces       string `json:"traces"`
	TracesFormat string `json:"traces_format"`
	Product      string `json:"product"`

	Services []ServiceDef `json:"services"`
	Fleets   []FleetDef   `json:"fleets"`
}

// Load parses a scenario document.
func Load(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("scenario: parsing: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// Validate checks the document before any work happens.
func (sc Scenario) Validate() error {
	if len(sc.Services) == 0 && len(sc.Fleets) == 0 {
		return fmt.Errorf("scenario: no services or fleets")
	}
	if sc.Days <= 0 && sc.Traces == "" {
		return fmt.Errorf("scenario: days must be positive for synthetic prices")
	}
	seen := map[string]bool{}
	for i, s := range sc.Services {
		if s.Name == "" {
			return fmt.Errorf("scenario: service %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("scenario: duplicate service %q", s.Name)
		}
		seen[s.Name] = true
		if s.Region == "" || s.Type == "" {
			return fmt.Errorf("scenario: service %q needs region and type", s.Name)
		}
		if _, err := parsePolicy(s.Policy); err != nil {
			return fmt.Errorf("scenario: service %q: %w", s.Name, err)
		}
		if _, err := parseMechanism(s.Mechanism); err != nil {
			return fmt.Errorf("scenario: service %q: %w", s.Name, err)
		}
		if s.StopHour != 0 && s.StopHour <= s.StartHour {
			return fmt.Errorf("scenario: service %q stops before it starts", s.Name)
		}
		if s.Revenue != nil {
			m := econ.RevenueModel{
				RequestsPerSecond:  s.Revenue.RequestsPerSecond,
				RevenuePerRequest:  s.Revenue.RevenuePerRequest,
				DegradedLossFactor: s.Revenue.DegradedLossFactor,
			}
			if err := m.Validate(); err != nil {
				return fmt.Errorf("scenario: service %q: %w", s.Name, err)
			}
		}
	}
	for i, f := range sc.Fleets {
		if f.Name == "" {
			return fmt.Errorf("scenario: fleet %d has no name", i)
		}
		if seen[f.Name] {
			return fmt.Errorf("scenario: duplicate name %q", f.Name)
		}
		seen[f.Name] = true
		if err := f.Validate(); err != nil {
			return fmt.Errorf("scenario: fleet %q: %w", f.Name, err)
		}
	}
	return nil
}

// resolveCatalog materializes the fleet's catalog configuration: nil for
// a legacy single-type fleet, otherwise a validated catalog with a known
// anchor. All malformed-catalog and unknown-type errors surface here, so
// both scenario loading and the HTTP control plane reject them before any
// simulation work happens.
func (f FleetDef) resolveCatalog() (*catalog.Catalog, error) {
	var cat *catalog.Catalog
	var err error
	if f.Catalog != "custom" && len(f.CatalogEntries) > 0 {
		return nil, fmt.Errorf("catalog_entries requires catalog: \"custom\"")
	}
	switch f.Catalog {
	case "":
	case "legacy":
		cat = catalog.Legacy()
	case "default":
		cat = catalog.Default()
	case "custom":
		if len(f.CatalogEntries) == 0 {
			return nil, fmt.Errorf("catalog \"custom\" requires catalog_entries")
		}
		entries := make([]catalog.Entry, len(f.CatalogEntries))
		for i, e := range f.CatalogEntries {
			entries[i] = catalog.Entry{
				Name:     market.InstanceType(e.Name),
				VCPU:     e.VCPU,
				MemoryGB: e.MemoryGB,
				Units:    e.Units,
				OnDemand: e.OnDemand,
			}
		}
		if cat, err = catalog.New(entries); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown catalog %q (want legacy, default or custom)", f.Catalog)
	}
	if cat == nil {
		if f.AnchorType != "" {
			return nil, fmt.Errorf("anchor_type %q set without a catalog", f.AnchorType)
		}
		return nil, nil
	}
	if f.AnchorType == "" {
		return nil, fmt.Errorf("catalog %q requires anchor_type", f.Catalog)
	}
	if _, ok := cat.Lookup(market.InstanceType(f.AnchorType)); !ok {
		return nil, fmt.Errorf("unknown anchor_type %q", f.AnchorType)
	}
	return cat, nil
}

// TypeSpecs returns the market type universe this fleet needs generated:
// the catalog's types in catalog mode, nil (caller default) otherwise.
func (f FleetDef) TypeSpecs() ([]market.TypeSpec, error) {
	cat, err := f.resolveCatalog()
	if err != nil {
		return nil, err
	}
	if cat == nil {
		return nil, nil
	}
	return cat.TypeSpecs(), nil
}

// strategyName resolves the fleet's strategy name, defaulting to the
// diversified allocation.
func (f FleetDef) strategyName() string {
	if f.Strategy == "" {
		return "diversified"
	}
	return f.Strategy
}

func parsePolicy(s string) (sched.Bidding, error) {
	switch s {
	case "on-demand", "on-demand-only", "baseline":
		return sched.OnDemandOnly, nil
	case "reactive":
		return sched.Reactive, nil
	case "proactive", "":
		return sched.Proactive, nil
	case "pure-spot", "spot":
		return sched.PureSpot, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func parseMechanism(s string) (vm.Mechanism, error) {
	switch s {
	case "ckpt":
		return vm.CKPT, nil
	case "ckpt-lr":
		return vm.CKPTLazy, nil
	case "ckpt-live":
		return vm.CKPTLive, nil
	case "ckpt-lr-live", "":
		return vm.CKPTLazyLive, nil
	case "naive":
		return vm.Naive, nil
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}

func parseMarkets(list []string) ([]market.ID, error) {
	var out []market.ID
	for _, part := range list {
		bits := strings.Split(strings.TrimSpace(part), "/")
		if len(bits) != 2 || bits[0] == "" || bits[1] == "" {
			return nil, fmt.Errorf("bad market %q, want region/type", part)
		}
		out = append(out, market.ID{
			Region: market.Region(bits[0]),
			Type:   market.InstanceType(bits[1]),
		})
	}
	return out, nil
}

// typeSpecs merges the default type universe with every fleet catalog's
// types, so catalog fleets find their markets in the generated set. It
// returns nil when no fleet extends the default universe, keeping
// catalog-free scenarios byte-identical to the pre-catalog generator.
func (sc Scenario) typeSpecs() ([]market.TypeSpec, error) {
	merged := market.DefaultTypes()
	seen := make(map[market.InstanceType]market.TypeSpec, len(merged))
	for _, ts := range merged {
		seen[ts.Name] = ts
	}
	changed := false
	for _, f := range sc.Fleets {
		specs, err := f.TypeSpecs()
		if err != nil {
			return nil, fmt.Errorf("scenario: fleet %q: %w", f.Name, err)
		}
		for _, ts := range specs {
			if prev, ok := seen[ts.Name]; ok {
				if prev != ts {
					return nil, fmt.Errorf("scenario: instance type %q defined twice with different specs", ts.Name)
				}
				continue
			}
			seen[ts.Name] = ts
			merged = append(merged, ts)
			changed = true
		}
	}
	if !changed {
		return nil, nil
	}
	return merged, nil
}

// prices resolves the scenario's market set.
func (sc Scenario) prices() (*market.Set, error) {
	if sc.Traces == "" {
		mcfg := market.DefaultConfig(sc.Seed)
		mcfg.Horizon = sc.Days * sim.Day
		types, err := sc.typeSpecs()
		if err != nil {
			return nil, err
		}
		if types != nil {
			mcfg.Types = types
		}
		return market.Generate(mcfg)
	}
	f, err := os.Open(sc.Traces)
	if err != nil {
		return nil, fmt.Errorf("scenario: opening traces: %w", err)
	}
	defer f.Close()
	opts := replay.Options{Product: sc.Product}
	switch sc.TracesFormat {
	case "", "csv":
		return market.ReadCSV(f)
	case "aws-json":
		return replay.LoadJSON(f, opts)
	case "aws-legacy":
		return replay.LoadLegacy(f, opts)
	}
	return nil, fmt.Errorf("scenario: unknown traces format %q", sc.TracesFormat)
}

// config builds one service's scheduler config.
func (s ServiceDef) config() (sched.Config, error) {
	home := market.ID{Region: market.Region(s.Region), Type: market.InstanceType(s.Type)}
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		return cfg, err
	}
	cfg.Bidding, _ = parsePolicy(s.Policy)
	cfg.Mechanism, _ = parseMechanism(s.Mechanism)
	if s.Pessimistic {
		cfg.VMParams = vm.PessimisticParams()
	}
	if s.BidMultiple > 0 {
		cfg.BidMultiple = s.BidMultiple
	}
	if s.Hysteresis > 0 {
		cfg.Hysteresis = s.Hysteresis
	}
	cfg.StabilityPenalty = s.StabilityPenalty
	if len(s.Markets) > 0 {
		ms, err := parseMarkets(s.Markets)
		if err != nil {
			return cfg, err
		}
		cfg.Markets = ms
	}
	if s.VMs > 0 {
		cfg.Service = sched.ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: s.VMs,
		}
	}
	return cfg, nil
}

// Defaults for FleetDef fields left zero: a diurnal curve peaking at 4x
// base load, sized linearly at 150 EBs per replica. scenarioPlanQuantum
// keeps TPC-W capacity planning to a handful of queueing simulations per
// scenario run.
const (
	defaultFleetBaseLoad   = 300
	defaultFleetPeakLoad   = 1200
	defaultFleetPerReplica = 150
	scenarioPlanQuantum    = 128
)

// Config builds the fleet controller config this definition describes
// over the given horizon: the exported surface the control plane uses to
// validate and instantiate registered fleets with exactly the semantics
// of a scenario-file fleet (same defaults, same planner selection).
func (f FleetDef) Config(horizon sim.Duration, seed int64) (fleet.Config, error) {
	return f.config(horizon, seed)
}

// Validate checks the definition standalone (outside a Scenario document):
// the same field checks Scenario.Validate applies per fleet.
func (f FleetDef) Validate() error {
	if _, ok := fleet.StrategyFor(f.strategyName()); !ok {
		return fmt.Errorf("unknown strategy %q", f.Strategy)
	}
	if _, err := parseMarkets(f.Markets); err != nil {
		return err
	}
	if f.BaseLoad < 0 || f.PeakLoad < 0 || f.PerReplicaLoad < 0 {
		return fmt.Errorf("negative load")
	}
	if f.PeakLoad > 0 && f.BaseLoad > 0 && f.PeakLoad < f.BaseLoad {
		return fmt.Errorf("peak_load below base_load")
	}
	if f.TargetMs < 0 || f.TickMinutes < 0 || f.BidMultiple < 0 || f.MaxReplicas < 0 {
		return fmt.Errorf("negative parameter")
	}
	if _, err := f.resolveCatalog(); err != nil {
		return err
	}
	return nil
}

// config builds one fleet's controller config over the scenario horizon.
func (f FleetDef) config(horizon sim.Duration, seed int64) (fleet.Config, error) {
	strat, ok := fleet.StrategyFor(f.strategyName())
	if !ok {
		return fleet.Config{}, fmt.Errorf("unknown strategy %q", f.Strategy)
	}
	markets, err := parseMarkets(f.Markets)
	if err != nil {
		return fleet.Config{}, err
	}
	base, peak := f.BaseLoad, f.PeakLoad
	if base <= 0 {
		base = defaultFleetBaseLoad
	}
	if peak <= 0 {
		peak = defaultFleetPeakLoad
	}
	if peak < base {
		peak = base
	}
	dcfg := fleet.DefaultDiurnalConfig(horizon, seed)
	dcfg.Base, dcfg.Peak = base, peak
	demand, err := fleet.NewDiurnalDemand(dcfg)
	if err != nil {
		return fleet.Config{}, err
	}
	cat, err := f.resolveCatalog()
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.Config{
		Markets:           markets,
		Strategy:          strat,
		Demand:            demand,
		Tick:              f.TickMinutes * sim.Minute,
		BidMultiple:       f.BidMultiple,
		MaxReplicas:       f.MaxReplicas,
		ReverseHysteresis: f.ReverseHysteresis,
		Catalog:           cat,
		AnchorType:        market.InstanceType(f.AnchorType),
	}
	if f.TargetMs > 0 {
		max := cfg.MaxReplicas
		if max <= 0 {
			max = fleet.DefaultMaxReplicas
		}
		tcfg := tpcw.DefaultConfig(1, false, true, seed)
		tcfg.Duration = 600
		tcfg.Warmup = 120
		planner, err := fleet.NewTPCWPlanner(tcfg, f.TargetMs, max, scenarioPlanQuantum)
		if err != nil {
			return fleet.Config{}, err
		}
		cfg.Planner = planner
	} else {
		per := f.PerReplicaLoad
		if per <= 0 {
			per = defaultFleetPerReplica
		}
		cfg.Planner = fleet.LinearPlanner{PerReplica: per}
	}
	return cfg, nil
}

// ServiceResult pairs a service's hosting report with its optional
// business analysis.
type ServiceResult struct {
	Name     string
	Report   metrics.Report
	Analysis *econ.Analysis // nil without a revenue model
}

// FleetResult is one fleet's outcome.
type FleetResult struct {
	Name   string
	Report fleet.Report
}

// Result is the whole scenario's outcome.
type Result struct {
	Services []ServiceResult
	Fleets   []FleetResult
	Totals   sched.Totals
}

// Run executes the scenario end to end.
func (sc Scenario) Run() (Result, error) {
	return sc.RunCtx(context.Background())
}

// RunCtx is Run under a context: a cancel aborts the portfolio simulation
// within one engine cancellation-poll batch and returns ctx's error, so a
// serving layer can bound or abandon a scenario run.
func (sc Scenario) RunCtx(ctx context.Context) (Result, error) {
	return sc.RunTracedCtx(ctx, nil)
}

// RunTracedCtx is RunCtx with an optional trace collector: the portfolio
// records every service onto its own track of one "portfolio" run, and
// each fleet records into a run named after it. A nil collector traces
// nothing at no cost.
func (sc Scenario) RunTracedCtx(ctx context.Context, col *trace.Collector) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	set, err := sc.prices()
	if err != nil {
		return Result{}, err
	}
	cp := cloud.DefaultParams(sc.Seed)
	horizon := sc.Days * sim.Day

	var out Result
	if len(sc.Services) > 0 {
		p := sched.NewPortfolio(set, cp)
		prec := col.Run("portfolio")
		p.SetRecorder(prec)
		for _, svc := range sc.Services {
			cfg, err := svc.config()
			if err != nil {
				return Result{}, fmt.Errorf("scenario: service %q: %w", svc.Name, err)
			}
			if err := p.AddAt(svc.StartHour*sim.Hour, svc.Name, cfg); err != nil {
				return Result{}, err
			}
			if svc.StopHour > 0 {
				if err := p.StopAt(svc.StopHour*sim.Hour, svc.Name); err != nil {
					return Result{}, err
				}
			}
		}
		if err := p.RunCtx(ctx, horizon); err != nil {
			return Result{}, err
		}
		col.Done(prec)
		for _, svc := range sc.Services {
			rep, err := p.Report(svc.Name)
			if err != nil {
				return Result{}, err
			}
			sr := ServiceResult{Name: svc.Name, Report: rep}
			if svc.Revenue != nil {
				m := econ.RevenueModel{
					RequestsPerSecond:  svc.Revenue.RequestsPerSecond,
					RevenuePerRequest:  svc.Revenue.RevenuePerRequest,
					DegradedLossFactor: svc.Revenue.DegradedLossFactor,
				}
				a, err := econ.Analyze(m, rep)
				if err != nil {
					return Result{}, err
				}
				sr.Analysis = &a
			}
			out.Services = append(out.Services, sr)
		}
		out.Totals = p.Totals()
	}

	// Each fleet is its own simulation over the same price universe: the
	// controller manages capacity, not individual long-lived VMs, so it
	// shares traces with the portfolio but not a bill.
	if fh := set.Horizon(); horizon <= 0 || horizon > fh {
		horizon = fh
	}
	for _, fd := range sc.Fleets {
		cfg, err := fd.config(horizon, sc.Seed)
		if err != nil {
			return Result{}, fmt.Errorf("scenario: fleet %q: %w", fd.Name, err)
		}
		frec := col.Run(fd.Name)
		rep, err := fleet.RunTracedCtx(ctx, set, cp, cfg, horizon, frec)
		if err != nil {
			return Result{}, fmt.Errorf("scenario: fleet %q: %w", fd.Name, err)
		}
		col.Done(frec)
		out.Fleets = append(out.Fleets, FleetResult{Name: fd.Name, Report: rep})
	}
	return out, nil
}

// Render prints the scenario outcome as text.
func (r Result) Render() string {
	var b strings.Builder
	for _, sr := range r.Services {
		fmt.Fprintf(&b, "%-16s cost=%6.1f%%  unavail=%8.4f%%  migrations F/P/R=%d/%d/%d\n",
			sr.Name, 100*sr.Report.NormalizedCost(), 100*sr.Report.Unavailability(),
			sr.Report.Migrations.Forced, sr.Report.Migrations.Planned, sr.Report.Migrations.Reverse)
		if sr.Analysis != nil {
			fmt.Fprintf(&b, "%-16s %s\n", "", sr.Analysis)
		}
	}
	if len(r.Services) > 0 {
		fmt.Fprintf(&b, "portfolio: %d services, cost %.1f%% of on-demand, worst unavailability %.4f%% (%s)\n",
			r.Totals.Services, 100*r.Totals.NormalizedCost(),
			100*r.Totals.WorstUnavailability, r.Totals.WorstService)
	}
	for _, fr := range r.Fleets {
		rep := fr.Report
		fmt.Fprintf(&b, "fleet %-10s %-12s cost=%6.1f%%  shortfall=%7.4f%%  peak=%d  lost=%d  worst-simul=%d  reverse=%d\n",
			fr.Name, rep.Strategy, 100*rep.NormalizedCost(), 100*rep.CapacityShortfall(),
			rep.PeakTarget, rep.ReplicasLost, rep.MaxSimultaneousLoss(), rep.ReverseReplacements)
	}
	return b.String()
}
