package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spothost/internal/market"
)

const goodDoc = `{
  "seed": 9,
  "days": 6,
  "services": [
    {"name": "shop", "region": "us-east-1a", "type": "medium",
     "policy": "proactive", "mechanism": "ckpt-lr-live",
     "revenue": {"requests_per_second": 40, "revenue_per_request": 0.001,
                 "degraded_loss_factor": 0.3}},
    {"name": "api", "region": "us-west-1a", "type": "small",
     "policy": "reactive", "mechanism": "ckpt-lr"},
    {"name": "surge", "region": "us-east-1a", "type": "small",
     "policy": "proactive", "vms": 4,
     "markets": ["us-east-1a/small", "us-east-1a/large"],
     "start_hour": 24, "stop_hour": 72}
  ]
}`

func TestLoadGood(t *testing.T) {
	sc, err := Load(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Services) != 3 || sc.Days != 6 {
		t.Fatalf("parsed: %+v", sc)
	}
	if sc.Services[0].Revenue == nil {
		t.Fatal("revenue model lost")
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"unknown field":   `{"days": 5, "bogus": 1, "services": [{"name":"a","region":"r","type":"small"}]}`,
		"no services":     `{"days": 5, "services": []}`,
		"no days":         `{"services": [{"name":"a","region":"r","type":"small"}]}`,
		"unnamed service": `{"days": 5, "services": [{"region":"r","type":"small"}]}`,
		"duplicate names": `{"days": 5, "services": [{"name":"a","region":"r","type":"small"},{"name":"a","region":"r","type":"small"}]}`,
		"missing region":  `{"days": 5, "services": [{"name":"a","type":"small"}]}`,
		"bad policy":      `{"days": 5, "services": [{"name":"a","region":"r","type":"small","policy":"wishful"}]}`,
		"bad mechanism":   `{"days": 5, "services": [{"name":"a","region":"r","type":"small","mechanism":"magic"}]}`,
		"stop<start":      `{"days": 5, "services": [{"name":"a","region":"r","type":"small","start_hour":10,"stop_hour":5}]}`,
		"bad revenue":     `{"days": 5, "services": [{"name":"a","region":"r","type":"small","revenue":{"requests_per_second":-1}}]}`,
		"unnamed fleet":   `{"days": 5, "fleets": [{"strategy": "diversified"}]}`,
		"dup fleet name":  `{"days": 5, "services": [{"name":"a","region":"r","type":"small"}], "fleets": [{"name":"a"}]}`,
		"bad strategy":    `{"days": 5, "fleets": [{"name":"f","strategy":"vibes"}]}`,
		"bad fleet mkt":   `{"days": 5, "fleets": [{"name":"f","markets":["us-east-1a"]}]}`,
		"peak<base":       `{"days": 5, "fleets": [{"name":"f","base_load":100,"peak_load":50}]}`,
		"negative param":  `{"days": 5, "fleets": [{"name":"f","target_ms":-1}]}`,
	}
	for label, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestScenarioRunEndToEnd(t *testing.T) {
	sc, err := Load(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 3 {
		t.Fatalf("results = %d", len(res.Services))
	}
	byName := map[string]ServiceResult{}
	for _, sr := range res.Services {
		byName[sr.Name] = sr
	}
	shop := byName["shop"]
	if shop.Report.Cost <= 0 || shop.Report.NormalizedCost() > 0.6 {
		t.Fatalf("shop report: %+v", shop.Report)
	}
	if shop.Analysis == nil || !shop.Analysis.WorthIt() {
		t.Fatalf("shop analysis: %+v", shop.Analysis)
	}
	if byName["api"].Analysis != nil {
		t.Fatal("api should have no analysis")
	}
	// The surge shard only lives for two days.
	surge := byName["surge"].Report
	if surge.Horizon > 49*3600 {
		t.Fatalf("surge horizon = %v", surge.Horizon)
	}
	if res.Totals.Services != 3 || res.Totals.Cost <= 0 {
		t.Fatalf("totals: %+v", res.Totals)
	}
	out := res.Render()
	for _, want := range []string{"shop", "api", "surge", "portfolio:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

const fleetDoc = `{
  "seed": 5,
  "days": 4,
  "fleets": [
    {"name": "web", "strategy": "diversified",
     "markets": ["us-east-1a/small", "us-east-1b/small", "us-west-1a/small", "eu-west-1a/small"],
     "base_load": 300, "peak_load": 900, "per_replica_load": 150}
  ]
}`

func TestScenarioFleetOnly(t *testing.T) {
	sc, err := Load(strings.NewReader(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 0 || len(res.Fleets) != 1 {
		t.Fatalf("results: %d services, %d fleets", len(res.Services), len(res.Fleets))
	}
	rep := res.Fleets[0].Report
	if res.Fleets[0].Name != "web" || rep.Strategy != "diversified" {
		t.Fatalf("fleet result: %+v", res.Fleets[0])
	}
	if rep.Cost <= 0 || rep.NormalizedCost() >= 1 {
		t.Fatalf("fleet cost %v of baseline %v", rep.Cost, rep.BaselineCost)
	}
	// Peak 900 EBs at 150 per replica ~ 6 target replicas (+/- noise).
	if rep.PeakTarget < 5 {
		t.Fatalf("peak target = %d", rep.PeakTarget)
	}
	if rep.CapacityShortfall() > 0.05 {
		t.Fatalf("shortfall = %v", rep.CapacityShortfall())
	}
	out := res.Render()
	if !strings.Contains(out, "fleet web") || strings.Contains(out, "portfolio:") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestScenarioMixedServicesAndFleets(t *testing.T) {
	doc := `{
	  "seed": 3,
	  "days": 3,
	  "services": [
	    {"name": "shop", "region": "us-east-1a", "type": "medium"}
	  ],
	  "fleets": [
	    {"name": "web", "strategy": "lowest-price", "per_replica_load": 150,
	     "base_load": 150, "peak_load": 450, "tick_minutes": 10}
	  ]
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Services) != 1 || len(res.Fleets) != 1 {
		t.Fatalf("results: %+v", res)
	}
	if res.Totals.Services != 1 {
		t.Fatalf("totals: %+v", res.Totals)
	}
	if res.Fleets[0].Report.Strategy != "lowest-price" {
		t.Fatalf("fleet strategy = %q", res.Fleets[0].Report.Strategy)
	}
	out := res.Render()
	for _, want := range []string{"shop", "portfolio:", "fleet web"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioFleetUnknownMarket(t *testing.T) {
	doc := `{"days": 2, "fleets": [
	  {"name":"f","markets":["atlantis-1a/small"],"per_replica_load":100}]}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("unknown fleet market ran")
	}
}

func TestScenarioUnknownMarketFails(t *testing.T) {
	doc := `{"days": 3, "services": [
	  {"name":"a","region":"atlantis-1a","type":"small"}]}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("unknown region ran")
	}
}

func TestScenarioReplaysCSV(t *testing.T) {
	// Write a tiny CSV universe and point the scenario at it.
	dir := t.TempDir()
	path := filepath.Join(dir, "prices.csv")
	csv := strings.Join([]string{
		"seconds,region,instance_type,price",
		"0,us-east-1a,small,0.011",
		"7200,us-east-1a,small,0.013",
		"#ondemand,us-east-1a,small,0.06",
		"#end,,,259200",
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `{"traces": "` + path + `", "services": [
	  {"name":"svc","region":"us-east-1a","type":"small","policy":"proactive"}]}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := res.Services[0].Report
	if r.Cost <= 0 || r.SpotFraction() < 0.9 {
		t.Fatalf("replayed run: %+v", r)
	}
}

func TestScenarioBadTraces(t *testing.T) {
	doc := `{"traces": "/nonexistent/prices.csv", "services": [
	  {"name":"svc","region":"us-east-1a","type":"small"}]}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("missing traces file ran")
	}
	sc.Traces = "scenario.go" // exists but wrong format
	sc.TracesFormat = "carrier-pigeon"
	if _, err := sc.Run(); err == nil {
		t.Fatal("unknown format ran")
	}
}

// TestScenarioCatalogValidation: malformed catalog knobs are rejected at
// Load time (which is what the HTTP layer turns into a 400), never at
// run time.
func TestScenarioCatalogValidation(t *testing.T) {
	cases := map[string]string{
		"unknown catalog":     `{"days": 2, "fleets": [{"name":"f","catalog":"exotic","anchor_type":"small"}]}`,
		"anchor sans catalog": `{"days": 2, "fleets": [{"name":"f","anchor_type":"small"}]}`,
		"catalog sans anchor": `{"days": 2, "fleets": [{"name":"f","catalog":"default"}]}`,
		"unknown anchor":      `{"days": 2, "fleets": [{"name":"f","catalog":"default","anchor_type":"mega"}]}`,
		"entries sans custom": `{"days": 2, "fleets": [{"name":"f","catalog":"default","anchor_type":"small",
		  "catalog_entries":[{"name":"a","vcpu":1,"memory_gb":1,"units":1,"on_demand":0.1}]}]}`,
		"custom sans entries": `{"days": 2, "fleets": [{"name":"f","catalog":"custom","anchor_type":"small"}]}`,
		"non-power-of-two units": `{"days": 2, "fleets": [{"name":"f","catalog":"custom","anchor_type":"a",
		  "catalog_entries":[{"name":"a","vcpu":1,"memory_gb":1,"units":3,"on_demand":0.1}]}]}`,
		"negative price": `{"days": 2, "fleets": [{"name":"f","catalog":"custom","anchor_type":"a",
		  "catalog_entries":[{"name":"a","vcpu":1,"memory_gb":1,"units":1,"on_demand":-0.1}]}]}`,
	}
	for label, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

const catalogFleetDoc = `{
  "seed": 5,
  "days": 2,
  "fleets": [
    {"name": "web", "strategy": "lowest-price",
     "catalog": "default", "anchor_type": "small",
     "base_load": 300, "peak_load": 900, "per_replica_load": 150}
  ]
}`

// TestScenarioCatalogFleetRuns: a typed-catalog fleet declared in a
// scenario document finds its markets — the generated universe is
// widened with the catalog's types — and produces a billed report.
func TestScenarioCatalogFleetRuns(t *testing.T) {
	sc, err := Load(strings.NewReader(catalogFleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fleets) != 1 {
		t.Fatalf("results: %d fleets", len(res.Fleets))
	}
	rep := res.Fleets[0].Report
	if rep.Cost <= 0 {
		t.Fatalf("catalog fleet cost = %v", rep.Cost)
	}
	types := map[market.InstanceType]bool{}
	for id := range rep.MarketSeconds {
		types[id.Type] = true
	}
	if len(types) < 2 {
		t.Errorf("catalog fleet billed %d instance types, want >= 2", len(types))
	}
}
