// Package tpcw simulates the paper's Section-6 system-performance study: a
// TPC-W-like multi-tiered shopping site driven by emulated browsers (EBs),
// hosted either on a native cloud VM or on a nested (Xen-Blanket) VM.
//
// The site is modelled as a closed queueing network: each EB thinks for an
// exponentially distributed period, then issues a request that visits a
// CPU station and an I/O station (both single-server FCFS queues); the
// response time is the queueing delay plus service. Nested virtualization
// inflates CPU service demand (up to the paper's 50 % worst case) and
// shaves ~2 % off I/O rates (Table 4), which reproduces the Fig. 12
// contrast: image-serving (I/O-bound) workloads run at native speed, while
// CPU-bound page generation saturates earlier on nested VMs.
package tpcw

import (
	"fmt"

	"spothost/internal/randx"
	"spothost/internal/sim"
	"spothost/internal/stats"
	"spothost/internal/vm"
)

// RequestClass is one request type of the workload mix.
type RequestClass struct {
	Name string
	// CPUms and IOms are the native mean service demands per request at
	// the CPU and I/O stations, in milliseconds.
	CPUms float64
	IOms  float64
	// Weight is the relative frequency of the class in the mix.
	Weight float64
}

// Config parameterizes one TPC-W run.
type Config struct {
	// EBs is the number of emulated browsers (the Fig. 12 x-axis).
	EBs int
	// ThinkTime is the mean think time between a response and the next
	// request (TPC-W uses ~7 s).
	ThinkTime sim.Duration
	// Classes is the request mix; the paper's "ordering workload" is 50 %
	// browsing, 50 % order transactions.
	Classes []RequestClass
	// Overhead applies the nested-virtualization factors; use
	// vm.NativeOverhead() for the Amazon-VM baseline.
	Overhead vm.Overhead
	// Duration is the measured window; Warmup is discarded first.
	Duration sim.Duration
	Warmup   sim.Duration
	Seed     int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.EBs <= 0:
		return fmt.Errorf("tpcw: EBs must be positive")
	case c.ThinkTime < 0:
		return fmt.Errorf("tpcw: negative think time")
	case len(c.Classes) == 0:
		return fmt.Errorf("tpcw: no request classes")
	case c.Duration <= 0 || c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("tpcw: bad measurement window (duration %v, warmup %v)", c.Duration, c.Warmup)
	}
	total := 0.0
	for _, cl := range c.Classes {
		if cl.CPUms < 0 || cl.IOms < 0 || cl.Weight <= 0 {
			return fmt.Errorf("tpcw: bad class %+v", cl)
		}
		total += cl.Weight
	}
	if total <= 0 {
		return fmt.Errorf("tpcw: zero total weight")
	}
	return nil
}

// OrderingMix returns the paper's TPC-W "ordering workload": 50 % of EBs
// browse, 50 % execute order transactions. withImages selects whether the
// server also delivers embedded images (Fig. 12(a), I/O-bound) or only the
// base pages, with images served by a CDN (Fig. 12(b), CPU-bound).
func OrderingMix(withImages bool) []RequestClass {
	if withImages {
		return []RequestClass{
			{Name: "browse", CPUms: 18, IOms: 85, Weight: 0.5},
			{Name: "order", CPUms: 35, IOms: 70, Weight: 0.5},
		}
	}
	return []RequestClass{
		{Name: "browse", CPUms: 22, IOms: 8, Weight: 0.5},
		{Name: "order", CPUms: 33, IOms: 10, Weight: 0.5},
	}
}

// DefaultConfig returns a Fig. 12-style run at the given load.
func DefaultConfig(ebs int, withImages, nested bool, seed int64) Config {
	ov := vm.NativeOverhead()
	if nested {
		ov = vm.DefaultOverhead()
	}
	return Config{
		EBs:       ebs,
		ThinkTime: 7,
		Classes:   OrderingMix(withImages),
		Overhead:  ov,
		Duration:  2000,
		Warmup:    400,
		Seed:      seed,
	}
}

// Result is the outcome of one run.
type Result struct {
	// MeanResponseMs is the Fig. 12 y-axis: mean end-to-end response time.
	MeanResponseMs float64
	P95ResponseMs  float64
	// ThroughputRPS is completed requests per second in the measured
	// window.
	ThroughputRPS float64
	Requests      int
	// CPUUtilization and IOUtilization are busy fractions of the two
	// stations over the measured window.
	CPUUtilization float64
	IOUtilization  float64
	// PerClassMeanMs maps class name to its mean response time.
	PerClassMeanMs map[string]float64
}

// classDemand holds one class's effective service demands in seconds,
// with virtualization overheads already applied.
type classDemand struct {
	cpu float64
	io  float64
}

// request is one in-flight page request.
type request struct {
	class     int
	cpuDemand sim.Duration
	ioDemand  sim.Duration
	start     sim.Time
}

// station is a single-server FCFS queue inside the simulation.
type station struct {
	eng       *sim.Engine
	busy      bool
	queue     []*request
	busySince sim.Time
	busyTime  sim.Duration
	demand    func(*request) sim.Duration
	done      func(*request) // downstream hop
}

func (st *station) submit(r *request) {
	st.queue = append(st.queue, r)
	if !st.busy {
		st.busy = true
		st.busySince = st.eng.Now()
		st.serveNext()
	}
}

func (st *station) serveNext() {
	r := st.queue[0]
	st.queue = st.queue[1:]
	st.eng.PostAfter(st.demand(r), func() {
		st.done(r)
		if len(st.queue) == 0 {
			st.busy = false
			st.busyTime += st.eng.Now() - st.busySince
		} else {
			st.serveNext()
		}
	})
}

func (st *station) utilization(horizon sim.Duration) float64 {
	busy := st.busyTime
	if st.busy {
		busy += st.eng.Now() - st.busySince
	}
	if horizon <= 0 {
		return 0
	}
	u := busy / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// Run executes the closed-loop simulation and returns measured statistics.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	eng := sim.NewEngine()
	rng := randx.Derive(cfg.Seed, "tpcw")

	// Pre-compute effective demands per class (seconds), applying the
	// CPU inflation and I/O degradation factors.
	ioFactor := (cfg.Overhead.DiskReadFactor + cfg.Overhead.DiskWriteFactor +
		cfg.Overhead.NetworkTxFactor + cfg.Overhead.NetworkRxFactor) / 4
	demands := make([]classDemand, len(cfg.Classes))
	var cum []float64
	total := 0.0
	for i, cl := range cfg.Classes {
		demands[i] = classDemand{
			cpu: cl.CPUms / 1000 * cfg.Overhead.CPUFactor,
			io:  cl.IOms / 1000 / ioFactor,
		}
		total += cl.Weight
		cum = append(cum, total)
	}
	pick := func() int {
		u := rng.Float64() * total
		for i, c := range cum {
			if u < c {
				return i
			}
		}
		return len(cum) - 1
	}

	cpu := &station{eng: eng, demand: func(r *request) sim.Duration { return r.cpuDemand }}
	ioSt := &station{eng: eng, demand: func(r *request) sim.Duration { return r.ioDemand }}
	var responses []float64
	perClass := make([]stats.Welford, len(cfg.Classes))
	completed := 0

	newRequest := func() {
		i := pick()
		cpu.submit(&request{
			class:     i,
			cpuDemand: rng.Exp(demands[i].cpu),
			ioDemand:  rng.Exp(demands[i].io),
			start:     eng.Now(),
		})
	}
	cpu.done = func(r *request) { ioSt.submit(r) }
	ioSt.done = func(r *request) {
		now := eng.Now()
		if now >= cfg.Warmup {
			rt := (now - r.start) * 1000 // ms
			responses = append(responses, rt)
			perClass[r.class].Add(rt)
			completed++
		}
		// The EB thinks, then issues its next request.
		eng.PostAfter(rng.Exp(cfg.ThinkTime), newRequest)
	}

	// Launch the EBs with staggered initial thinks.
	for i := 0; i < cfg.EBs; i++ {
		eng.PostAfter(rng.Exp(cfg.ThinkTime), newRequest)
	}
	eng.RunUntil(cfg.Duration)

	window := cfg.Duration - cfg.Warmup
	res := Result{
		Requests:       completed,
		ThroughputRPS:  float64(completed) / window,
		PerClassMeanMs: map[string]float64{},
	}
	if len(responses) > 0 {
		res.MeanResponseMs = stats.Mean(responses)
		if p, err := stats.Percentile(responses, 95); err == nil {
			res.P95ResponseMs = p
		}
	}
	for i, cl := range cfg.Classes {
		if perClass[i].N() > 0 {
			res.PerClassMeanMs[cl.Name] = perClass[i].Mean()
		}
	}
	res.CPUUtilization = cpu.utilization(cfg.Duration)
	res.IOUtilization = ioSt.utilization(cfg.Duration)
	return res, nil
}
