package tpcw

import "fmt"

// ReplicatedConfig extends Config with horizontal scaling: Replicas
// identical servers behind a round-robin load balancer, each with its own
// CPU and I/O station. This is how Section 6's overhead turns into
// capacity planning: a nested fleet needs more replicas than a native one
// to hold the same response-time target for CPU-bound workloads.
type ReplicatedConfig struct {
	Config
	Replicas int
}

// Validate extends Config validation.
func (c ReplicatedConfig) Validate() error {
	if c.Replicas <= 0 {
		return fmt.Errorf("tpcw: Replicas must be positive, got %d", c.Replicas)
	}
	return c.Config.Validate()
}

// RunReplicated simulates the replicated deployment and returns the same
// statistics as Run (aggregated across replicas; utilizations are
// per-replica means).
func RunReplicated(cfg ReplicatedConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Replicas == 1 {
		return Run(cfg.Config)
	}
	// Round-robin at the EB level: each browser is pinned to one replica,
	// which both balances load and keeps the simulation a set of
	// independent closed subsystems we can run as one config each.
	base := cfg.EBs / cfg.Replicas
	extra := cfg.EBs % cfg.Replicas
	var agg Result
	agg.PerClassMeanMs = map[string]float64{}
	classW := map[string]float64{}
	var cpuU, ioU float64
	var weightedMean, weightedP95 float64
	for i := 0; i < cfg.Replicas; i++ {
		sub := cfg.Config
		sub.EBs = base
		if i < extra {
			sub.EBs++
		}
		if sub.EBs == 0 {
			continue
		}
		sub.Seed = cfg.Seed + int64(i)*7919
		r, err := Run(sub)
		if err != nil {
			return Result{}, err
		}
		w := float64(r.Requests)
		agg.Requests += r.Requests
		agg.ThroughputRPS += r.ThroughputRPS
		weightedMean += r.MeanResponseMs * w
		weightedP95 += r.P95ResponseMs * w
		cpuU += r.CPUUtilization
		ioU += r.IOUtilization
		for name, mean := range r.PerClassMeanMs {
			agg.PerClassMeanMs[name] += mean * w
			classW[name] += w
		}
	}
	if agg.Requests > 0 {
		agg.MeanResponseMs = weightedMean / float64(agg.Requests)
		agg.P95ResponseMs = weightedP95 / float64(agg.Requests)
	}
	for name := range agg.PerClassMeanMs {
		if classW[name] > 0 {
			agg.PerClassMeanMs[name] /= classW[name]
		}
	}
	agg.CPUUtilization = cpuU / float64(cfg.Replicas)
	agg.IOUtilization = ioU / float64(cfg.Replicas)
	return agg, nil
}

// CapacityPlan reports how many replicas a deployment needs to hold a
// mean-response-time target at a given load.
type CapacityPlan struct {
	Replicas       int
	MeanResponseMs float64
	Met            bool
}

// PlanCapacity finds the smallest replica count (up to maxReplicas) whose
// mean response time stays at or below targetMs for the given load. When
// even maxReplicas misses the target, the plan reports Met=false with the
// maxReplicas result — callers decide whether to scale the budget or relax
// the SLA.
func PlanCapacity(cfg Config, targetMs float64, maxReplicas int) (CapacityPlan, error) {
	if targetMs <= 0 {
		return CapacityPlan{}, fmt.Errorf("tpcw: target must be positive, got %v", targetMs)
	}
	if maxReplicas <= 0 {
		return CapacityPlan{}, fmt.Errorf("tpcw: maxReplicas must be positive")
	}
	var last CapacityPlan
	for n := 1; n <= maxReplicas; n++ {
		r, err := RunReplicated(ReplicatedConfig{Config: cfg, Replicas: n})
		if err != nil {
			return CapacityPlan{}, err
		}
		last = CapacityPlan{Replicas: n, MeanResponseMs: r.MeanResponseMs}
		if r.MeanResponseMs <= targetMs {
			last.Met = true
			return last, nil
		}
	}
	return last, nil
}

// OverheadReplicaRatio quantifies Section 6's punchline as capacity: the
// ratio of replicas a nested deployment needs versus a native one to hold
// the same target at the same load.
func OverheadReplicaRatio(ebs int, withImages bool, targetMs float64, maxReplicas int, seed int64) (native, nested CapacityPlan, err error) {
	nativeCfg := DefaultConfig(ebs, withImages, false, seed)
	nestedCfg := DefaultConfig(ebs, withImages, true, seed)
	native, err = PlanCapacity(nativeCfg, targetMs, maxReplicas)
	if err != nil {
		return
	}
	nested, err = PlanCapacity(nestedCfg, targetMs, maxReplicas)
	return
}
