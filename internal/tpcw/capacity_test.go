package tpcw

import (
	"testing"
)

func TestReplicatedValidation(t *testing.T) {
	cfg := ReplicatedConfig{Config: DefaultConfig(100, false, false, 1), Replicas: 0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero replicas accepted")
	}
	cfg.Replicas = 2
	cfg.EBs = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid embedded config accepted")
	}
}

func TestReplicatedSingleEqualsRun(t *testing.T) {
	base := DefaultConfig(150, false, true, 3)
	direct, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	via, err := RunReplicated(ReplicatedConfig{Config: base, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if direct.MeanResponseMs != via.MeanResponseMs || direct.Requests != via.Requests {
		t.Fatalf("1-replica path diverged: %v vs %v", direct.MeanResponseMs, via.MeanResponseMs)
	}
}

func TestReplicasRelieveSaturation(t *testing.T) {
	// 400 EBs saturate one nested CPU-bound server; four replicas should
	// bring the response time down by an order of magnitude.
	cfg := DefaultConfig(400, false, true, 5)
	one, err := RunReplicated(ReplicatedConfig{Config: cfg, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunReplicated(ReplicatedConfig{Config: cfg, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.MeanResponseMs >= one.MeanResponseMs/4 {
		t.Fatalf("4 replicas: %.0f ms vs 1 replica %.0f ms — not enough relief",
			four.MeanResponseMs, one.MeanResponseMs)
	}
	// Throughput approaches the closed-loop ceiling N/Z.
	if four.ThroughputRPS < one.ThroughputRPS {
		t.Fatalf("throughput dropped with replicas: %.1f vs %.1f",
			four.ThroughputRPS, one.ThroughputRPS)
	}
	// EB conservation: all requests still served.
	if four.Requests <= 0 {
		t.Fatal("no requests")
	}
}

func TestPlanCapacityValidation(t *testing.T) {
	cfg := DefaultConfig(100, false, false, 1)
	if _, err := PlanCapacity(cfg, 0, 4); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := PlanCapacity(cfg, 100, 0); err == nil {
		t.Fatal("zero maxReplicas accepted")
	}
}

func TestPlanCapacityFindsMinimum(t *testing.T) {
	cfg := DefaultConfig(300, false, false, 7)
	plan, err := PlanCapacity(cfg, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Met {
		t.Fatalf("target unreachable: %+v", plan)
	}
	if plan.Replicas < 1 || plan.Replicas > 8 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.MeanResponseMs > 200 {
		t.Fatalf("met plan exceeds target: %+v", plan)
	}
	// A replica count below the plan must miss the target (minimality),
	// unless the plan already found 1.
	if plan.Replicas > 1 {
		r, err := RunReplicated(ReplicatedConfig{Config: cfg, Replicas: plan.Replicas - 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.MeanResponseMs <= 200 {
			t.Fatalf("plan not minimal: %d-1 replicas already meet the target (%.0f ms)",
				plan.Replicas, r.MeanResponseMs)
		}
	}
}

func TestPlanCapacityUnreachable(t *testing.T) {
	cfg := DefaultConfig(400, false, true, 9)
	plan, err := PlanCapacity(cfg, 1, 2) // 1 ms is impossible
	if err != nil {
		t.Fatal(err)
	}
	if plan.Met {
		t.Fatalf("1 ms target reported met: %+v", plan)
	}
	if plan.Replicas != 2 {
		t.Fatalf("unmet plan should report maxReplicas: %+v", plan)
	}
}

// TestOverheadReplicaRatio: the Section-6 capacity punchline — CPU-bound
// nested deployments need more replicas than native ones for the same
// target; I/O-bound ones do not.
func TestOverheadReplicaRatio(t *testing.T) {
	nativeP, nestedP, err := OverheadReplicaRatio(400, false, 300, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !nativeP.Met || !nestedP.Met {
		t.Fatalf("targets unmet: %+v %+v", nativeP, nestedP)
	}
	if nestedP.Replicas <= nativeP.Replicas {
		t.Fatalf("CPU-bound nested (%d) should need more replicas than native (%d)",
			nestedP.Replicas, nativeP.Replicas)
	}
	// The ratio lands near the 1.5x CPU inflation.
	ratio := float64(nestedP.Replicas) / float64(nativeP.Replicas)
	if ratio < 1.1 || ratio > 2.5 {
		t.Fatalf("replica ratio %.2f outside the plausible band", ratio)
	}
}
