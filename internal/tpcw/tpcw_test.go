package tpcw

import (
	"math"
	"testing"

	"spothost/internal/vm"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(100, true, false, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.EBs = 0 },
		func(c *Config) { c.ThinkTime = -1 },
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = c.Duration },
		func(c *Config) { c.Classes = []RequestClass{{Name: "x", CPUms: -1, Weight: 1}} },
		func(c *Config) { c.Classes = []RequestClass{{Name: "x", CPUms: 1, Weight: 0}} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(100, true, false, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLightLoadResponseNearServiceDemand(t *testing.T) {
	// A single EB never queues: mean response ~ sum of mean demands.
	cfg := DefaultConfig(1, false, false, 1)
	cfg.Duration = 20000
	cfg.Warmup = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mix demand: browse 30 ms, order 43 ms -> ~36.5 ms mean.
	if res.MeanResponseMs < 25 || res.MeanResponseMs > 50 {
		t.Fatalf("light-load response = %.1f ms, want ~36 ms", res.MeanResponseMs)
	}
	if res.CPUUtilization > 0.05 {
		t.Fatalf("single EB CPU utilization = %.3f", res.CPUUtilization)
	}
}

func TestResponseTimeMonotoneInLoad(t *testing.T) {
	var prev float64
	for i, ebs := range []int{50, 200, 400} {
		res, err := Run(DefaultConfig(ebs, false, false, 7))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.MeanResponseMs < prev*0.8 {
			t.Fatalf("response dropped with load: %d EBs -> %.0f ms (prev %.0f)",
				ebs, res.MeanResponseMs, prev)
		}
		prev = res.MeanResponseMs
	}
}

// TestFig12aIOBoundParity: when browsers fetch images, the workload is
// I/O-bound and nested VMs perform like native ones.
func TestFig12aIOBoundParity(t *testing.T) {
	for _, ebs := range []int{100, 300} {
		nat, err := Run(DefaultConfig(ebs, true, false, 3))
		if err != nil {
			t.Fatal(err)
		}
		nst, err := Run(DefaultConfig(ebs, true, true, 3))
		if err != nil {
			t.Fatal(err)
		}
		ratio := nst.MeanResponseMs / nat.MeanResponseMs
		if ratio > 1.25 {
			t.Fatalf("%d EBs: nested/native response ratio = %.2f, want near parity", ebs, ratio)
		}
		if nat.IOUtilization < nat.CPUUtilization {
			t.Fatalf("image workload should be I/O-bound: io=%.2f cpu=%.2f",
				nat.IOUtilization, nat.CPUUtilization)
		}
	}
}

// TestFig12bCPUBoundOverhead: without images the workload is CPU-bound and
// the nested VM saturates earlier, costing up to ~50 % (and under heavy
// saturation more) in response time.
func TestFig12bCPUBoundOverhead(t *testing.T) {
	nat, err := Run(DefaultConfig(400, false, false, 5))
	if err != nil {
		t.Fatal(err)
	}
	nst, err := Run(DefaultConfig(400, false, true, 5))
	if err != nil {
		t.Fatal(err)
	}
	if nst.MeanResponseMs < nat.MeanResponseMs*1.3 {
		t.Fatalf("nested %.0f ms vs native %.0f ms: expected substantial CPU overhead",
			nst.MeanResponseMs, nat.MeanResponseMs)
	}
	if nat.CPUUtilization < nat.IOUtilization {
		t.Fatalf("no-image workload should be CPU-bound: cpu=%.2f io=%.2f",
			nat.CPUUtilization, nat.IOUtilization)
	}
	// Saturated native system at 400 EBs lands in the multi-second band
	// like Fig. 12(b).
	if nat.MeanResponseMs < 500 || nat.MeanResponseMs > 15000 {
		t.Fatalf("native 400-EB response = %.0f ms, want saturated seconds-scale", nat.MeanResponseMs)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(DefaultConfig(150, true, true, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(150, true, true, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponseMs != b.MeanResponseMs || a.Requests != b.Requests {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestThroughputConservation(t *testing.T) {
	res, err := Run(DefaultConfig(100, true, false, 9))
	if err != nil {
		t.Fatal(err)
	}
	// Interactive response-time law sanity: X <= N / Z and X > 0.
	if res.ThroughputRPS <= 0 {
		t.Fatal("no throughput")
	}
	if res.ThroughputRPS > float64(100)/7*1.2 {
		t.Fatalf("throughput %.1f exceeds closed-loop bound", res.ThroughputRPS)
	}
	if res.Requests <= 0 || res.P95ResponseMs < res.MeanResponseMs*0.5 {
		t.Fatalf("suspicious stats: %+v", res)
	}
	if len(res.PerClassMeanMs) != 2 {
		t.Fatalf("per-class stats missing: %+v", res.PerClassMeanMs)
	}
}

func TestMeasureIOTable4(t *testing.T) {
	base := NativeBaselines()
	nested := MeasureIO(base, vm.DefaultOverhead(), 0, 1)
	// Network within a hair of native; disk ~2 % degraded (Table 4).
	deg := DegradationPercent(base, nested)
	if deg[0] > 1 || deg[1] > 1.5 {
		t.Fatalf("network degradation too high: %v", deg)
	}
	if deg[2] < 1 || deg[2] > 4 || deg[3] < 1 || deg[3] > 4 {
		t.Fatalf("disk degradation outside ~2%% band: %v", deg)
	}
	// Native measured under identity overhead is exactly the baseline.
	same := MeasureIO(base, vm.NativeOverhead(), 0, 1)
	if same != base {
		t.Fatalf("identity overhead changed rates: %+v", same)
	}
}

func TestMeasureIONoise(t *testing.T) {
	base := NativeBaselines()
	a := MeasureIO(base, vm.DefaultOverhead(), 0.02, 1)
	b := MeasureIO(base, vm.DefaultOverhead(), 0.02, 2)
	if a == b {
		t.Fatal("different seeds produced identical noisy measurements")
	}
	if math.Abs(a.NetworkTx-304) > 304*0.15 {
		t.Fatalf("noise too large: %+v", a)
	}
}

func TestDegradationPercentZeroBase(t *testing.T) {
	d := DegradationPercent(IOMicrobench{}, IOMicrobench{NetworkTx: 5})
	if d[0] != 0 {
		t.Fatalf("zero base should yield 0, got %v", d)
	}
}
