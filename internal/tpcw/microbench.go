package tpcw

import (
	"spothost/internal/randx"
	"spothost/internal/vm"
)

// IOMicrobench reproduces the Table 4 micro-benchmarks: iperf network
// throughput and dd disk throughput on a native Amazon VM versus a nested
// (Xen-Blanket) VM. The native baselines are the paper's measurements for
// an m3.medium with EBS; the nested column applies the vm.Overhead factors
// with small run-to-run measurement noise.
type IOMicrobench struct {
	// Throughputs in Mbps, as Table 4 reports them.
	NetworkTx float64
	NetworkRx float64
	DiskRead  float64
	DiskWrite float64
}

// NativeBaselines are the paper's measured Amazon-VM rates (Table 4).
func NativeBaselines() IOMicrobench {
	return IOMicrobench{
		NetworkTx: 304,
		NetworkRx: 316,
		DiskRead:  304.6,
		DiskWrite: 280.4,
	}
}

// MeasureIO "runs" the micro-benchmarks under the given virtualization
// overhead: each rate is the native baseline scaled by its factor, with
// noise of the given coefficient of variation (pass 0 for exact values).
func MeasureIO(base IOMicrobench, ov vm.Overhead, noiseCV float64, seed int64) IOMicrobench {
	rng := randx.Derive(seed, "tpcw/microbench")
	n := func(v float64) float64 {
		if noiseCV <= 0 {
			return v
		}
		return rng.LognormalMeanCV(v, noiseCV)
	}
	return IOMicrobench{
		NetworkTx: n(base.NetworkTx * ov.NetworkTxFactor),
		NetworkRx: n(base.NetworkRx * ov.NetworkRxFactor),
		DiskRead:  n(base.DiskRead * ov.DiskReadFactor),
		DiskWrite: n(base.DiskWrite * ov.DiskWriteFactor),
	}
}

// DegradationPercent returns how much slower (in percent) measurement m is
// than the baseline b for each of the four rates, in Table 4 order.
func DegradationPercent(b, m IOMicrobench) [4]float64 {
	pct := func(base, meas float64) float64 {
		if base == 0 {
			return 0
		}
		return 100 * (base - meas) / base
	}
	return [4]float64{
		pct(b.NetworkTx, m.NetworkTx),
		pct(b.NetworkRx, m.NetworkRx),
		pct(b.DiskRead, m.DiskRead),
		pct(b.DiskWrite, m.DiskWrite),
	}
}
