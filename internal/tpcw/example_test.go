package tpcw_test

import (
	"fmt"
	"log"

	"spothost/internal/tpcw"
)

// ExampleRun contrasts nested and native VMs under the paper's two TPC-W
// configurations at 300 emulated browsers.
func ExampleRun() {
	for _, withImages := range []bool{true, false} {
		nat, err := tpcw.Run(tpcw.DefaultConfig(300, withImages, false, 1))
		if err != nil {
			log.Fatal(err)
		}
		nst, err := tpcw.Run(tpcw.DefaultConfig(300, withImages, true, 1))
		if err != nil {
			log.Fatal(err)
		}
		ratio := nst.MeanResponseMs / nat.MeanResponseMs
		fmt.Printf("withImages=%v nested-penalty>25%%=%v\n", withImages, ratio > 1.25)
	}
	// Output:
	// withImages=true nested-penalty>25%=false
	// withImages=false nested-penalty>25%=true
}

// ExamplePlanCapacity sizes a nested fleet for a 300 ms response-time
// target under CPU-bound load.
func ExamplePlanCapacity() {
	cfg := tpcw.DefaultConfig(400, false, true, 3)
	plan, err := tpcw.PlanCapacity(cfg, 300, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("met=%v replicas>=2=%v\n", plan.Met, plan.Replicas >= 2)
	// Output:
	// met=true replicas>=2=true
}
