// Paper-level benchmark harness: one testing.B target per table and figure
// in the evaluation. Each benchmark regenerates its table/figure from
// scratch per iteration (workload generation, simulation, aggregation) and
// reports the experiment's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.
// Benchmarks default to reduced fidelity (one seed, 10-day horizon) so the
// suite completes in seconds; run cmd/paperbench for full-fidelity output.
package spothost

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"spothost/internal/catalog"
	"spothost/internal/cloud"
	"spothost/internal/controlplane"
	"spothost/internal/experiments"
	"spothost/internal/fleet"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/scenario"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/sweep"
	"spothost/internal/tpcw"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

// benchOpts returns the reduced-fidelity options used by the benchmarks.
func benchOpts() experiments.Options {
	o := experiments.Quick()
	o.Seeds = []int64{11}
	return o
}

// BenchmarkFigure1PriceTraces regenerates the Fig. 1 month-long spot price
// traces and their summary statistics.
func BenchmarkFigure1PriceTraces(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		mean = r.Summaries[0].Mean / r.Summaries[0].OnDemand
	}
	b.ReportMetric(mean, "spot/od-ratio")
}

// BenchmarkTable1StartupTimes measures instance allocation latencies
// through the simulated provider.
func BenchmarkTable1StartupTimes(b *testing.B) {
	var spot float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		spot = r.Spot["us-east-1"]
	}
	b.ReportMetric(spot, "spot-startup-s")
}

// BenchmarkTable2MigrationOverheads evaluates the migration mechanism
// latency models (live migrate / checkpoint / disk copy).
func BenchmarkTable2MigrationOverheads(b *testing.B) {
	var live float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		live = r.LiveIntra["us-east-1a"]
	}
	b.ReportMetric(live, "live-2GB-s")
}

// BenchmarkFigure6ProactiveVsReactive runs the proactive-vs-reactive
// comparison across all four instance sizes (Fig. 6a-d).
func BenchmarkFigure6ProactiveVsReactive(b *testing.B) {
	var proactCost, proactUnavail float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		proactCost = r.Rows[0].Proact.NormalizedCost()
		proactUnavail = r.Rows[0].Proact.Unavailability()
	}
	b.ReportMetric(100*proactCost, "proact-cost-%")
	b.ReportMetric(100*proactUnavail, "proact-unavail-%")
}

// BenchmarkFigure7MigrationMechanisms compares the four mechanism
// combinations under typical and pessimistic constants (Fig. 7).
func BenchmarkFigure7MigrationMechanisms(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		best = r.Cells[len(r.Cells)-1].Typical.Unavailability()
	}
	b.ReportMetric(100*best, "lr+live-unavail-%")
}

// BenchmarkFigure8MultiMarket runs single- vs multi-market fleets in every
// region (Fig. 8a-c).
func BenchmarkFigure8MultiMarket(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reduction = r.Rows[0].Reduction
	}
	b.ReportMetric(100*reduction, "multi-reduction-%")
}

// BenchmarkFigure9MultiRegion runs single- vs multi-region fleets over all
// region pairs (Fig. 9a-c).
func BenchmarkFigure9MultiRegion(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		cost = r.Rows[0].Multi.NormalizedCost()
	}
	b.ReportMetric(100*cost, "multi-region-cost-%")
}

// BenchmarkFigure10PriceVariability computes per-region per-size price
// standard deviations (Fig. 10).
func BenchmarkFigure10PriceVariability(b *testing.B) {
	var east float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		east = r.StdDev["us-east-1a"]["xlarge"]
	}
	b.ReportMetric(east, "useast-xlarge-std-$")
}

// BenchmarkFigure11PureSpot compares migration-based hosting against spot
// instances alone (Fig. 11a-b).
func BenchmarkFigure11PureSpot(b *testing.B) {
	var pure float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		pure = r.Rows[0].PureSpot.Unavailability()
	}
	b.ReportMetric(100*pure, "pure-spot-unavail-%")
}

// BenchmarkTable3CostAvailabilityMatrix derives the qualitative matrix
// from measured runs (Table 3).
func BenchmarkTable3CostAvailabilityMatrix(b *testing.B) {
	var ok float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if r.MigrationIsBest {
			ok = 1
		}
	}
	b.ReportMetric(ok, "migration-best")
}

// BenchmarkTable4NestedIOOverhead measures nested-vs-native I/O throughput
// (Table 4).
func BenchmarkTable4NestedIOOverhead(b *testing.B) {
	var deg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		deg = r.DegradationPct[2]
	}
	b.ReportMetric(deg, "disk-read-deg-%")
}

// BenchmarkFigure12TPCWOverhead sweeps the TPC-W load for both workload
// configurations on native and nested VMs (Fig. 12a-b).
func BenchmarkFigure12TPCWOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := r.NoImages[len(r.NoImages)-1]
		ratio = last.NestedMs / last.NativeMs
	}
	b.ReportMetric(ratio, "cpu-bound-400EB-ratio")
}

// BenchmarkSection6OverheadImpact derives the worst-case cost savings
// under nested CPU overhead (Sec. 6 text).
func BenchmarkSection6OverheadImpact(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Section6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = r.WorstCaseCost
	}
	b.ReportMetric(100*worst, "worst-cost-%")
}

// BenchmarkAblationDesignChoices sweeps the scheduler's design knobs (bid
// multiple, checkpoint bound, hysteresis, stability penalty) — the
// ablation studies DESIGN.md calls out.
func BenchmarkAblationDesignChoices(b *testing.B) {
	var forcedAtCap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		forcedAtCap = r.BidMultiple[len(r.BidMultiple)-1].Report.ForcedPerHour()
	}
	b.ReportMetric(forcedAtCap, "forced/hr-at-4x-bid")
}

// BenchmarkRobustnessRegimes runs the policies under the alternative
// banded-reserve price regime (Agmon Ben-Yehuda et al.) and the calibrated
// one — the conclusions-degrade-gracefully check.
func BenchmarkRobustnessRegimes(b *testing.B) {
	var bandedUnavail float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Robustness(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		bandedUnavail = r.Rows[0].Banded.Unavailability()
	}
	b.ReportMetric(100*bandedUnavail, "banded-unavail-%")
}

// --- component micro-benchmarks -------------------------------------------
// These measure the substrates themselves rather than paper artifacts.

// BenchmarkMarketGenerate measures synthetic-universe generation (16
// markets x 30 days).
func BenchmarkMarketGenerate(b *testing.B) {
	cfg := market.DefaultConfig(1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := market.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerMonth measures one 30-day proactive hosting run
// end-to-end (price events, revocations, migrations, billing).
func BenchmarkSchedulerMonth(b *testing.B) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		b.Fatal(err)
	}
	mcfg := market.DefaultConfig(0)
	for i := 0; i < b.N; i++ {
		if _, err := sched.RunSeeds(mcfg, cloud.DefaultParams(0), cfg,
			30*sim.Day, []int64{int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerMonthTraced is BenchmarkSchedulerMonth with a live
// trace recorder attached: the delta against the nil-recorder baseline is
// the whole-run cost of span and histogram recording.
func BenchmarkSchedulerMonthTraced(b *testing.B) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		b.Fatal(err)
	}
	mcfg := market.DefaultConfig(0)
	col := trace.NewHistogramCollector()
	for i := 0; i < b.N; i++ {
		if _, err := sched.RunSeedsTracedCtx(context.Background(), mcfg,
			cloud.DefaultParams(0), cfg, 30*sim.Day, []int64{int64(i + 1)}, 0, col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetMonth measures one 30-day diversified fleet run
// end-to-end (autoscaling ticks, spot launches, revocation replacement,
// billing) with a linear capacity model so the benchmark isolates the
// controller rather than the TPC-W planner.
func BenchmarkFleetMonth(b *testing.B) {
	demand, err := fleet.NewDiurnalDemand(fleet.DefaultDiurnalConfig(30*sim.Day, 0))
	if err != nil {
		b.Fatal(err)
	}
	cfg := fleet.Config{
		Strategy: fleet.Diversified{},
		Demand:   demand,
		Planner:  fleet.LinearPlanner{PerReplica: 6},
	}
	mcfg := market.DefaultConfig(0)
	var lost int
	for i := 0; i < b.N; i++ {
		reps, err := fleet.RunSeeds(mcfg, cloud.DefaultParams(0), cfg,
			30*sim.Day, []int64{int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		lost += reps[0].ReplicasLost
	}
	b.ReportMetric(float64(lost)/float64(b.N), "replicas-lost/run")
}

// BenchmarkFleetMonthObs is BenchmarkFleetMonth with a telemetry recorder
// attached: same 30-day diversified fleet, but every controller decision
// lands in the ledger and every tick feeds the downsampled timelines. The
// delta against BenchmarkFleetMonth is the whole observability overhead
// budget (acceptance: within 5%).
func BenchmarkFleetMonthObs(b *testing.B) {
	demand, err := fleet.NewDiurnalDemand(fleet.DefaultDiurnalConfig(30*sim.Day, 0))
	if err != nil {
		b.Fatal(err)
	}
	cfg := fleet.Config{
		Strategy: fleet.Diversified{},
		Demand:   demand,
		Planner:  fleet.LinearPlanner{PerReplica: 6},
	}
	mcfg := market.DefaultConfig(0)
	cache := market.SharedCache()
	var decisions int
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		mc := mcfg
		mc.Seed = seed
		set, err := cache.Generate(mc)
		if err != nil {
			b.Fatal(err)
		}
		cp := cloud.DefaultParams(0)
		cp.Seed = seed
		ob := obs.NewRecorder("bench", obs.Config{})
		if _, err := fleet.RunObsCtx(context.Background(), set, cp, cfg,
			30*sim.Day, nil, ob); err != nil {
			b.Fatal(err)
		}
		decisions += len(ob.Ledger())
	}
	b.ReportMetric(float64(decisions)/float64(b.N), "decisions/run")
}

// BenchmarkRunSeedsParallel measures the multi-seed fan-out at one worker
// versus one worker per core: eight 10-day proactive runs per iteration,
// with universes drawn from the shared market cache. On a multi-core
// machine the NumCPU variant should approach a linear speedup, since the
// per-seed simulations are independent and single-threaded.
func BenchmarkRunSeedsParallel(b *testing.B) {
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		b.Fatal(err)
	}
	mcfg := market.DefaultConfig(0)
	mcfg.Horizon = 10 * sim.Day
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.RunSeedsParallel(mcfg, cloud.DefaultParams(0), cfg,
					10*sim.Day, seeds, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkControlPlane10k measures the multi-tenant control plane at its
// 10k registered-fleet design point: each iteration registers ten
// thousand one-day fleets (sharing one cached universe), time-slices them
// all to completion across the default shard count, and reports the
// sustained slice throughput plus the p99 latency of snapshot reads
// issued while the runtime is busy — the two numbers that bound how many
// tenants one process can serve interactively.
func BenchmarkControlPlane10k(b *testing.B) {
	const nFleets = 10000
	spec := controlplane.Spec{
		Seed:  3,
		Days:  1,
		Fleet: scenario.FleetDef{Strategy: "diversified"},
	}
	names := make([]string, nFleets)
	for i := range names {
		names[i] = fmt.Sprintf("f%05d", i)
	}
	var stepsPerSec float64
	var p99 time.Duration
	for i := 0; i < b.N; i++ {
		p := controlplane.New(controlplane.Config{
			MaxFleets:   nFleets,
			TenantQuota: nFleets,
			Slice:       6 * sim.Hour, // four slices per fleet
		})
		start := time.Now()
		for _, name := range names {
			if _, err := p.Register("bench", name, spec); err != nil {
				b.Fatal(err)
			}
		}
		lat := make([]time.Duration, 0, 1<<16)
		for done := false; !done; {
			for k := 0; k < 200; k++ {
				t0 := time.Now()
				if _, err := p.Snapshot("bench", names[(len(lat)*97)%nFleets]); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			st := p.Stats()
			if st.Failed > 0 {
				b.Fatalf("%d fleets failed", st.Failed)
			}
			done = st.Done == nFleets
		}
		elapsed := time.Since(start).Seconds()
		stepsPerSec = float64(p.Stats().StepsTotal) / elapsed
		sort.Slice(lat, func(a, c int) bool { return lat[a] < lat[c] })
		p99 = lat[len(lat)*99/100]
		p.Close()
	}
	b.ReportMetric(stepsPerSec, "steps/s")
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-snapshot-ns")
}

// BenchmarkLiveMigrationModel measures the pre-copy timeline computation.
func BenchmarkLiveMigrationModel(b *testing.B) {
	p := vm.DefaultParams()
	spec := vm.Spec{MemoryGB: 15, DirtyRateMBps: 12, DiskGB: 8, Units: 8}
	for i := 0; i < b.N; i++ {
		tl := vm.LiveMigrationTimeline(spec, p.LiveBandwidthMBps, p)
		if tl.Duration <= 0 {
			b.Fatal("degenerate timeline")
		}
	}
}

// BenchmarkTPCWRun measures one 400-EB closed-loop TPC-W simulation.
func BenchmarkTPCWRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tpcw.Run(tpcw.DefaultConfig(400, false, true, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCursorWalk measures a full monotone walk of a generated
// trace through a Cursor (the provider clock's access pattern) versus the
// per-query binary search of BenchmarkTracePriceAtWalk.
func BenchmarkTraceCursorWalk(b *testing.B) {
	set, err := market.Generate(market.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	tr := set.Trace(market.ID{Region: "us-east-1a", Type: "small"})
	step := 5 * sim.Minute
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		c := market.NewCursor(tr)
		for t := sim.Time(0); t < tr.End(); t += step {
			acc += c.PriceAt(t)
		}
	}
	_ = acc
}

// BenchmarkTracePriceAtWalk is the binary-search baseline for
// BenchmarkTraceCursorWalk.
func BenchmarkTracePriceAtWalk(b *testing.B) {
	set, err := market.Generate(market.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	tr := set.Trace(market.ID{Region: "us-east-1a", Type: "small"})
	step := 5 * sim.Minute
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		for t := sim.Time(0); t < tr.End(); t += step {
			acc += tr.PriceAt(t)
		}
	}
	_ = acc
}

// BenchmarkEnvelopeCursorWalk measures a monotone cheapest-market walk over
// the whole universe through the precomputed envelope, versus scanning
// every trace at each step (BenchmarkMarketScanWalk) — the scheduler's
// per-decision loop before the envelope.
func BenchmarkEnvelopeCursorWalk(b *testing.B) {
	set, err := market.Generate(market.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	ids := set.IDs()
	env := set.Envelope(ids, nil)
	if env == nil {
		b.Fatal("nil envelope")
	}
	step := 5 * sim.Minute
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		c := env.Cursor()
		for t := sim.Time(0); t < env.End(); t += step {
			_, p, _ := c.At(t)
			acc += p
		}
	}
	_ = acc
}

// BenchmarkMarketScanWalk is the scan-all-markets baseline for
// BenchmarkEnvelopeCursorWalk.
func BenchmarkMarketScanWalk(b *testing.B) {
	set, err := market.Generate(market.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	ids := set.IDs()
	step := 5 * sim.Minute
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		for t := sim.Time(0); t < set.Horizon(); t += step {
			best := 0.0
			for j, id := range ids {
				if p := set.Trace(id).PriceAt(t); j == 0 || p < best {
					best = p
				}
			}
			acc += best
		}
	}
	_ = acc
}

// BenchmarkCorrelationClosedForm measures the exact segment-merge Pearson
// correlation of two month-long traces (the Fig. 8b/9b statistic).
func BenchmarkCorrelationClosedForm(b *testing.B) {
	set, err := market.Generate(market.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	ta := set.Trace(market.ID{Region: "us-east-1a", Type: "small"})
	tb := set.Trace(market.ID{Region: "us-east-1b", Type: "small"})
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += market.Correlation(ta, tb)
	}
	_ = acc
}

// sweepBenchSpec is the grid both sweep benchmarks run: a dense bid axis
// (the realistic fine-resolution sweep the engine is built for) crossed
// with the checkpoint bound, over three seeds. BenchmarkSweepGrid resolves
// it with warm-start sharing and pruning; BenchmarkSweepGridCold simulates
// every cell. The cells/s ratio between the two is the engine's speedup.
func sweepBenchSpec() sweep.Spec {
	bids := []float64{1.5, 2, 2.5, 3, 3.5}
	for v := 4.0; v <= 12.0; v += 0.1 {
		bids = append(bids, v)
	}
	return sweep.Spec{
		Axes: []sweep.Axis{
			{Knob: sweep.KnobBid, Values: bids},
			{Knob: sweep.KnobTau, Values: []float64{3, 30}},
		},
		Seeds:   []int64{1, 2, 3},
		Home:    market.ID{Region: "us-east-1a", Type: "small"},
		Horizon: 4 * sim.Day,
		Market:  market.DefaultConfig(0),
	}
}

// BenchmarkSweepGrid runs the benchmark grid through the sweep engine with
// warm-start sharing and pruning on, reporting resolved cells per second.
func BenchmarkSweepGrid(b *testing.B) {
	var cps float64
	for i := 0; i < b.N; i++ {
		spec := sweepBenchSpec()
		spec.WarmStart = true
		spec.Prune = true
		sum, err := sweep.Run(context.Background(), &spec)
		if err != nil {
			b.Fatal(err)
		}
		cps = sum.CellsPerSec()
	}
	b.ReportMetric(cps, "cells/s")
}

// BenchmarkSweepGridCold is the naive baseline: the same grid with every
// cell simulated from scratch.
func BenchmarkSweepGridCold(b *testing.B) {
	var cps float64
	for i := 0; i < b.N; i++ {
		spec := sweepBenchSpec()
		sum, err := sweep.Run(context.Background(), &spec)
		if err != nil {
			b.Fatal(err)
		}
		cps = sum.CellsPerSec()
	}
	b.ReportMetric(cps, "cells/s")
}

// sweepForkSpec is the fork benchmark grid: a dense checkpoint-bound
// (tau) axis. No whole-horizon oracle can certify two tau cells equal, so
// before forkable checkpoints every one of these cells ran cold. With
// Fork on, each seed runs one checkpointing pilot per family and resumes
// every sibling from the pilot's last quiescent checkpoint before its
// first diverging forced warning — usually near the horizon, so siblings
// simulate only a short tail.
func sweepForkSpec() sweep.Spec {
	var taus []float64
	for v := 1.0; v <= 40; v++ {
		taus = append(taus, v)
	}
	return sweep.Spec{
		Axes:    []sweep.Axis{{Knob: sweep.KnobTau, Values: taus}},
		Seeds:   []int64{1, 2, 3},
		Home:    market.ID{Region: "us-east-1a", Type: "small"},
		Horizon: 4 * sim.Day,
		Market:  market.DefaultConfig(0),
	}
}

// BenchmarkSweepGridFork resolves the tau grid with mid-horizon forking
// on, reporting resolved cells per second. Compare against
// BenchmarkSweepGridCold: forking must clear 5x the cold rate on this
// previously-uncertifiable axis.
func BenchmarkSweepGridFork(b *testing.B) {
	var cps float64
	for i := 0; i < b.N; i++ {
		spec := sweepForkSpec()
		spec.Fork = true
		sum, err := sweep.Run(context.Background(), &spec)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Forked == 0 {
			b.Fatal("fork benchmark resolved no cells by forking")
		}
		cps = sum.CellsPerSec()
	}
	b.ReportMetric(cps, "cells/s")
}

// BenchmarkFleetMonthCatalog is BenchmarkFleetMonth over the heterogeneous
// instance catalog: the same month of diurnal demand, but the universe is
// widened to the ten default catalog types (40 markets) and the controller
// may fill its unit target with any type at least as powerful as the
// small anchor. The comparison against BenchmarkFleetMonth prices the
// ~10x-universe overhead of typed placement.
func BenchmarkFleetMonthCatalog(b *testing.B) {
	demand, err := fleet.NewDiurnalDemand(fleet.DefaultDiurnalConfig(30*sim.Day, 0))
	if err != nil {
		b.Fatal(err)
	}
	cat := catalog.Default()
	cfg := fleet.Config{
		Strategy:   fleet.Diversified{},
		Demand:     demand,
		Planner:    fleet.LinearPlanner{PerReplica: 6},
		Catalog:    cat,
		AnchorType: "small",
	}
	mcfg := market.DefaultConfig(0)
	mcfg.Types = cat.TypeSpecs()
	var lost int
	for i := 0; i < b.N; i++ {
		reps, err := fleet.RunSeeds(mcfg, cloud.DefaultParams(0), cfg,
			30*sim.Day, []int64{int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		lost += reps[0].ReplicasLost
	}
	b.ReportMetric(float64(lost)/float64(b.N), "replicas-lost/run")
}

// BenchmarkEnvelopeCursorWalk10x walks the capacity-normalized envelope
// over the full typed universe (ten catalog types x four regions, ~10x
// the single-type fleet's candidate set): each candidate's price is
// weighted by 1/units so the envelope yields the cheapest market per
// capacity unit. The per-op cost should stay within a small constant of
// BenchmarkEnvelopeCursorWalk — the walk is O(1) amortized per query in
// the number of markets.
func BenchmarkEnvelopeCursorWalk10x(b *testing.B) {
	cat := catalog.Default()
	mcfg := market.DefaultConfig(1)
	mcfg.Types = cat.TypeSpecs()
	set, err := market.Generate(mcfg)
	if err != nil {
		b.Fatal(err)
	}
	ids, err := cat.CompatibleMarkets(set, "small")
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, len(ids))
	for i, id := range ids {
		e, _ := cat.Lookup(id.Type)
		weights[i] = 1 / float64(e.Units)
	}
	env := set.Envelope(ids, weights)
	if env == nil {
		b.Fatal("nil envelope")
	}
	b.ReportMetric(float64(len(ids)), "markets")
	step := 5 * sim.Minute
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		c := env.Cursor()
		for t := sim.Time(0); t < env.End(); t += step {
			_, p, _ := c.At(t)
			acc += p
		}
	}
	_ = acc
}
