// Package spothost reproduces "Cutting the Cost of Hosting Online Services
// Using Cloud Spot Markets" (He, Shenoy, Sitaraman, Irwin — HPDC 2015): a
// cloud scheduler that hosts always-on Internet services on revocable spot
// servers at a fraction of the on-demand price, combining proactive
// bidding with live migration, bounded memory checkpointing and lazy
// restore so that revocations cost milliseconds-to-seconds of downtime
// instead of outages.
//
// The root package carries the module documentation and the paper-level
// benchmark harness (bench_test.go); the implementation lives under
// internal/ (see DESIGN.md for the system inventory) and the runnable
// entry points under cmd/ and examples/.
package spothost
