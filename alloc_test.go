// Steady-state allocation discipline for the hot event loop: once a run is
// warm, the recurring events (market price changes across the whole
// universe, hourly billing) must not allocate — the free list, persistent
// closures, and scratch buffers absorb all of it. This is the loop under
// BenchmarkSchedulerMonth; the pure-engine counterpart lives in
// internal/sim (TestSteadyStateEventLoopZeroAllocs).
package spothost

import (
	"testing"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sim"
)

func TestSteadyStateRunLoopAllocs(t *testing.T) {
	mcfg := market.DefaultConfig(1)
	mcfg.Horizon = 40 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	prov := cloud.NewProvider(eng, set, cloud.DefaultParams(1))
	home := market.ID{Region: "us-east-1a", Type: "small"}
	if _, err := prov.RequestOnDemand(home, cloud.Callbacks{}); err != nil {
		t.Fatal(err)
	}
	// Warm up past the point where the event heap, free list, and billing
	// ledger have reached capacity.
	horizon := sim.Time(30 * sim.Day)
	eng.RunUntil(horizon)
	allocs := testing.AllocsPerRun(5, func() {
		horizon += sim.Day
		eng.RunUntil(horizon)
	})
	// A day of the warm loop fires thousands of price-change and billing
	// events. The only allocation permitted is the amortized growth of the
	// billing ledger's entry slice, which shows up as less than one
	// allocation per day-long window on average.
	if allocs >= 1 {
		t.Fatalf("steady-state run loop allocated %.2f per simulated day, want < 1", allocs)
	}
}

// TestObsOffAllocs pins the telemetry layer's disabled-path contract:
// with no obs recorder on the engine, the billing hooks (the hottest obs
// call sites — they fire every simulated hour per instance) must add
// zero steady-state allocations. Every hook site guards on the nil
// recorder before building any argument, so this is the same bound as
// TestSteadyStateRunLoopAllocs.
func TestObsOffAllocs(t *testing.T) {
	mcfg := market.DefaultConfig(1)
	mcfg.Horizon = 40 * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	eng.SetObs(nil) // explicit: telemetry off
	prov := cloud.NewProvider(eng, set, cloud.DefaultParams(1))
	home := market.ID{Region: "us-east-1a", Type: "small"}
	if _, err := prov.RequestOnDemand(home, cloud.Callbacks{}); err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(30 * sim.Day)
	eng.RunUntil(horizon)
	allocs := testing.AllocsPerRun(5, func() {
		horizon += sim.Day
		eng.RunUntil(horizon)
	})
	if allocs >= 1 {
		t.Fatalf("obs-off steady state allocated %.2f per simulated day, want < 1", allocs)
	}
}
