#!/usr/bin/env bash
# Record the hot-path price-engine benchmarks to BENCH_5.json: the four
# end-to-end benchmarks named in the PR-5 acceptance criteria plus the
# component benchmarks for the cursor, envelope, and closed-form stats.
#
# The .raw field holds the verbatim `go test -bench` lines — feed them to
# benchstat (e.g. `jq -r '.raw[]' BENCH_5.json | benchstat /dev/stdin`) or
# diff two recordings. BENCHTIME overrides the fixed iteration count
# (default 3x).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='BenchmarkSchedulerMonth$|BenchmarkFleetMonth$|BenchmarkFigure8MultiMarket$|BenchmarkFigure10PriceVariability$|BenchmarkTraceCursorWalk$|BenchmarkTracePriceAtWalk$|BenchmarkEnvelopeCursorWalk$|BenchmarkMarketScanWalk$|BenchmarkCorrelationClosedForm$'
BENCHTIME="${BENCHTIME:-3x}"
OUT=BENCH_5.json

RAW=$(go test -run NONE -bench "$BENCHES" -benchtime "$BENCHTIME" -benchmem .)
echo "$RAW"

{
	echo '{'
	echo '  "issue": 5,'
	echo "  \"benchtime\": \"$BENCHTIME\","
	echo '  "raw": ['
	echo "$RAW" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g' \
		| awk '{printf "%s    \"%s\"", sep, $0; sep=",\n"} END {print ""}'
	echo '  ],'
	echo '  "benchmarks": ['
	echo "$RAW" | awk '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = "null"; bo = "null"; ao = "null"
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				if ($(i+1) == "B/op") bo = $i
				if ($(i+1) == "allocs/op") ao = $i
			}
			printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, ns, bo, ao
			sep = ",\n"
		}
		END { print "" }'
	echo '  ]'
	echo '}'
} > "$OUT"
echo "wrote $OUT"
