#!/usr/bin/env bash
# Record the benchmark suite to BENCH_${ISSUE}.json: the end-to-end
# scheduler/fleet benchmarks, the hot-path price-engine component
# benchmarks, and the sweep-engine grid benchmarks (warm-start + pruning
# vs the naive cold baseline, plus mid-horizon forking on a tau grid).
#
# The .raw field holds the verbatim `go test -bench` lines — feed them to
# benchstat (e.g. `jq -r '.raw[]' BENCH_7.json | benchstat /dev/stdin`) or
# diff two recordings. Environment knobs:
#   BENCHTIME     iteration count/duration per benchmark (default 3x)
#   CP_BENCHTIME  iteration count for the 10k-fleet control-plane benchmark
#                 (default 1x: one iteration registers and completes 10k fleets)
#   ISSUE         issue number recorded in the JSON (default 10)
#   OUT           output path (default BENCH_${ISSUE}.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='BenchmarkSchedulerMonth$|BenchmarkFleetMonth$|BenchmarkFleetMonthObs$|BenchmarkFleetMonthCatalog$|BenchmarkFigure8MultiMarket$|BenchmarkFigure10PriceVariability$|BenchmarkTraceCursorWalk$|BenchmarkTracePriceAtWalk$|BenchmarkEnvelopeCursorWalk$|BenchmarkEnvelopeCursorWalk10x$|BenchmarkMarketScanWalk$|BenchmarkCorrelationClosedForm$|BenchmarkSweepGrid$|BenchmarkSweepGridCold$|BenchmarkSweepGridFork$'
BENCHTIME="${BENCHTIME:-3x}"
CP_BENCHTIME="${CP_BENCHTIME:-1x}"
ISSUE="${ISSUE:-10}"
OUT="${OUT:-BENCH_${ISSUE}.json}"

RAW=$(go test -run NONE -bench "$BENCHES" -benchtime "$BENCHTIME" -benchmem .)
echo "$RAW"
# The control-plane scale benchmark runs separately at its own benchtime:
# one iteration is already a full 10k-fleet register-and-drain cycle.
RAW_CP=$(go test -run NONE -bench 'BenchmarkControlPlane10k$' -benchtime "$CP_BENCHTIME" .)
echo "$RAW_CP"
RAW="$RAW
$RAW_CP"

{
	echo '{'
	echo "  \"issue\": $ISSUE,"
	echo "  \"benchtime\": \"$BENCHTIME\","
	echo '  "raw": ['
	echo "$RAW" | sed 's/\\/\\\\/g; s/"/\\"/g; s/\t/\\t/g' \
		| awk '{printf "%s    \"%s\"", sep, $0; sep=",\n"} END {print ""}'
	echo '  ],'
	echo '  "benchmarks": ['
	echo "$RAW" | awk '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = "null"; bo = "null"; ao = "null"; cps = "null"; sps = "null"; p99 = "null"
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				if ($(i+1) == "B/op") bo = $i
				if ($(i+1) == "allocs/op") ao = $i
				if ($(i+1) == "cells/s") cps = $i
				if ($(i+1) == "steps/s") sps = $i
				if ($(i+1) == "p99-snapshot-ns") p99 = $i
			}
			printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"cells_per_s\": %s, \"steps_per_s\": %s, \"p99_snapshot_ns\": %s}", sep, name, $2, ns, bo, ao, cps, sps, p99
			sep = ",\n"
		}
		END { print "" }'
	echo '  ]'
	echo '}'
} > "$OUT"
echo "wrote $OUT"
