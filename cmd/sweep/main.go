// Command sweep runs a parameter sweep over one scheduler knob and prints
// CSV rows (value, normalized cost, unavailability, forced/hr, migrations)
// suitable for plotting.
//
// Usage:
//
//	sweep -knob bid -values 1.5,2,3,4
//	sweep -knob tau -values 1,3,10,30 -days 30 -seeds 5
//	sweep -knob hysteresis -values 0,0.05,0.15,0.4
//	sweep -knob lambda -values 0,0.5,1,2
//
// Multi-knob grids run through the internal/sweep engine: -grid takes a
// semicolon-separated cross product of axes, and the engine can share
// certified-identical cells (-warm-start), resume sibling cells from a
// pilot's mid-horizon checkpoint (-fork — the only reuse that works on a
// tau axis), and cut dominated configurations early (-prune), reporting
// progress in cells/sec (-progress):
//
//	sweep -grid "bid=1.5,2,2.5,3,4,6,8;tau=3,30" -warm-start -fork -prune -progress
//	sweep -grid "tau=1,3,10,30,60" -fork -progress
//
// It can also run any registered experiment (the same table cmd/paperbench
// and the HTTP API serve) and print its CSV series:
//
//	sweep -experiment fleet -seeds 2 -days 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/experiments"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/obs"
	"spothost/internal/runpool"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/sweep"
	"spothost/internal/trace"
)

func main() {
	knob := flag.String("knob", "bid", "bid | tau | hysteresis | lambda")
	valuesF := flag.String("values", "", "comma-separated knob values")
	region := flag.String("region", "us-east-1a", "home region")
	typeF := flag.String("type", "small", "home instance type")
	days := flag.Float64("days", 30, "horizon in days")
	seedsN := flag.Int("seeds", 3, "seeds to average over")
	fleet := flag.Int("vms", 0, "fleet size for multi-market knobs (default 4 for hysteresis/lambda)")
	parallel := flag.Int("parallel", 0, "worker count for (value, seed) cells; 0 means GOMAXPROCS")
	experiment := flag.String("experiment", "", "run a registered experiment by name instead of a knob sweep")
	traceF := flag.String("trace", "", "write a run trace of every simulation cell to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (Perfetto trace_event JSON) | jsonl")
	obsOn := flag.Bool("obs", false, "collect simulated-time telemetry for every fleet cell (-experiment mode); composes with -trace")
	obsOut := flag.String("obs-out", "sweep-obs", "output prefix for -obs: writes <prefix>-timeline.csv and <prefix>-ledger.ndjson")
	gridF := flag.String("grid", "", `multi-knob grid, e.g. "bid=1.5,2,3;tau=3,30" (cross product; uses the sweep engine)`)
	warm := flag.Bool("warm-start", false, "share one pilot simulation across cells certified identical (grid mode)")
	fork := flag.Bool("fork", false, "resume sibling cells from the pilot's last checkpoint before their first divergence (grid mode)")
	prune := flag.Bool("prune", false, "cut configs dominated on every seed so far (grid mode)")
	progress := flag.Bool("progress", false, "report sweep progress in cells/sec on stderr (grid mode)")
	flag.Parse()

	var col *trace.Collector
	if *traceF != "" {
		col = trace.NewCollector()
	}
	var ocol *obs.Collector
	if *obsOn {
		ocol = obs.NewCollector(obs.Config{})
	}

	if *experiment != "" {
		runExperiment(*experiment, *seedsN, *days, *parallel, col, ocol)
		writeTrace(col, *traceF, *traceFormat)
		writeObs(ocol, *obsOut)
		return
	}
	if ocol != nil {
		// Knob and grid sweeps run scheduler cells, which have no fleet
		// controller feeding the telemetry layer; only -experiment fleet
		// cells record timelines.
		fmt.Fprintln(os.Stderr, "-obs applies to -experiment runs only; ignoring")
		ocol = nil
	}

	if *gridF != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := runGrid(ctx, os.Stdout, gridOpts{
			Grid:      *gridF,
			Region:    *region,
			Type:      *typeF,
			Days:      *days,
			Seeds:     *seedsN,
			Fleet:     *fleet,
			Parallel:  *parallel,
			WarmStart: *warm,
			Fork:      *fork,
			Prune:     *prune,
			Progress:  *progress,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fatal(err)
		}
		return
	}

	values, err := parseValues(*valuesF, *knob)
	if err != nil {
		fatal(err)
	}
	var seeds []int64
	for i := 0; i < *seedsN; i++ {
		seeds = append(seeds, int64(23*(i+1)))
	}
	mcfg := market.DefaultConfig(0)
	if h := *days * sim.Day; h > mcfg.Horizon {
		mcfg.Horizon = h
	}
	home := market.ID{Region: market.Region(*region), Type: market.InstanceType(*typeF)}

	// Flatten the sweep into independent (value, seed) simulation cells so
	// one pool keeps every worker busy across the whole sweep; rows print
	// in value order once all cells finish.
	cfgs := make([]sched.Config, len(values))
	for i, v := range values {
		cfg, err := buildConfig(*knob, v, home, *fleet)
		if err != nil {
			fatal(err)
		}
		cfgs[i] = cfg
	}
	// Ctrl-C (or SIGTERM) cancels every in-flight cell and exits promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ns := len(seeds)
	cache := market.SharedCache()
	cells := make([]int, len(values)*ns)
	reports, err := runpool.MapCtx(ctx, *parallel, cells, func(ctx context.Context, i, _ int) (metrics.Report, error) {
		mc := mcfg
		mc.Seed = seeds[i%ns]
		set, err := cache.Generate(mc)
		if err != nil {
			return metrics.Report{}, err
		}
		cp := cloud.DefaultParams(0)
		cp.Seed = seeds[i%ns]
		rec := col.Run(fmt.Sprintf("%s=%g/seed%d", *knob, values[i/ns], seeds[i%ns]))
		rep, err := sched.RunTracedCtx(ctx, set, cp, cfgs[i/ns], *days*sim.Day, rec)
		if err == nil {
			col.Done(rec)
		}
		return rep, err
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("knob,value,normalized_cost,unavailability,forced_per_hr,voluntary_per_hr,migrations\n")
	for i, v := range values {
		r := metrics.Average(reports[i*ns : (i+1)*ns])
		fmt.Printf("%s,%g,%.5f,%.7f,%.5f,%.5f,%d\n",
			*knob, v, r.NormalizedCost(), r.Unavailability(),
			r.ForcedPerHour(), r.PlannedReversePerHour(), r.Migrations.Total())
	}
	writeTrace(col, *traceF, *traceFormat)
}

// writeTrace exports the collected trace, if tracing was requested.
func writeTrace(col *trace.Collector, path, format string) {
	if col == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := col.Export(f, format); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// writeObs exports the collected telemetry, if -obs was requested.
func writeObs(ocol *obs.Collector, prefix string) {
	if ocol == nil {
		return
	}
	if err := ocol.WriteFiles(prefix); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s-timeline.csv and %s-ledger.ndjson\n", prefix, prefix)
}

// runExperiment executes one entry from the experiments registry — the
// same single table behind cmd/paperbench and the HTTP API, so a newly
// registered experiment is immediately sweepable — and prints its CSV
// series when it exports one, its rendered table otherwise.
func runExperiment(name string, seedsN int, days float64, parallel int, col *trace.Collector, ocol *obs.Collector) {
	entry, ok := experiments.Find(name)
	if !ok {
		var names []string
		for _, e := range experiments.All() {
			names = append(names, e.Name)
		}
		fatal(fmt.Errorf("unknown experiment %q; registered: %s", name, strings.Join(names, ", ")))
	}
	opts := experiments.Defaults()
	if seedsN > 0 && seedsN <= 16 {
		opts.Seeds = opts.Seeds[:0]
		for i := 0; i < seedsN; i++ {
			opts.Seeds = append(opts.Seeds, int64(23*(i+1)))
		}
	}
	if days > 0 {
		opts.Horizon = days * sim.Day
		opts.Market.Horizon = opts.Horizon
	}
	opts.Parallel = parallel
	opts.Trace = col.Scope(name)
	opts.Obs = ocol.Scope(name)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx
	res, err := entry.Run(opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	if exp, ok := res.(experiments.CSVExporter); ok {
		fmt.Print(exp.CSV())
		return
	}
	fmt.Println(res.Render())
}

// parseValues parses the -values list, with per-knob defaults.
func parseValues(s, knob string) ([]float64, error) {
	if s == "" {
		switch knob {
		case "bid":
			return []float64{1.5, 2, 3, 4}, nil
		case "tau":
			return []float64{1, 3, 10, 30}, nil
		case "hysteresis":
			return []float64{0, 0.05, 0.15, 0.4}, nil
		case "lambda":
			return []float64{0, 0.5, 1, 2}, nil
		}
		return nil, fmt.Errorf("unknown knob %q", knob)
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// buildConfig applies the knob value to a scheduler config. The grid
// engine owns the knob-to-config mapping now; this keeps the historical
// single-knob entry point.
func buildConfig(knob string, v float64, home market.ID, fleet int) (sched.Config, error) {
	return sweep.BuildConfig(home, fleet, []sweep.Setting{{Knob: knob, Value: v}})
}

// gridOpts carries the flag values of a -grid run.
type gridOpts struct {
	Grid         string
	Region, Type string
	Days         float64
	Seeds        int
	Fleet        int
	Parallel     int
	WarmStart    bool
	Fork         bool
	Prune        bool
	Progress     bool
}

// runGrid executes a multi-knob grid through the sweep engine and prints
// one CSV row per grid point: the knob values, the mean metrics over the
// seeds the point ran, how its cells were resolved — so neither sharing,
// forking, nor pruning is ever silent — the pilot point that fed any
// reused cells, the mean fork-resume time in days (fork_at, blank when the
// point never forked), and whether the point was cut and which point
// dominated it. An aggregate cell-accounting line (cold / shared / forked
// / pruned) always goes to stderr.
func runGrid(ctx context.Context, w io.Writer, o gridOpts) error {
	axes, err := sweep.ParseGrid(o.Grid)
	if err != nil {
		return err
	}
	var seeds []int64
	for i := 0; i < o.Seeds; i++ {
		seeds = append(seeds, int64(23*(i+1)))
	}
	mcfg := market.DefaultConfig(0)
	if h := o.Days * sim.Day; h > mcfg.Horizon {
		mcfg.Horizon = h
	}
	spec := sweep.Spec{
		Axes:      axes,
		Seeds:     seeds,
		Home:      market.ID{Region: market.Region(o.Region), Type: market.InstanceType(o.Type)},
		FleetSize: o.Fleet,
		Horizon:   o.Days * sim.Day,
		Market:    mcfg,
		Workers:   o.Parallel,
		WarmStart: o.WarmStart,
		Fork:      o.Fork,
		Prune:     o.Prune,
	}
	if o.Progress {
		spec.OnProgress = func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells (%.0f cells/s, %d simulated, %d shared, %d forked, %d pruned)   ",
				p.Done, p.Total, p.CellsPerSec(), p.Simulated, p.Shared, p.Forked, p.PrunedCells)
		}
	}
	sum, err := sweep.Run(ctx, &spec)
	if o.Progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	for _, ax := range axes {
		fmt.Fprintf(w, "%s,", ax.Knob)
	}
	fmt.Fprintf(w, "normalized_cost,unavailability,forced_per_hr,voluntary_per_hr,migrations,seeds,pilot,fork_at,pruned,dominated_by\n")
	for _, res := range sum.Results {
		for _, v := range res.Values {
			fmt.Fprintf(w, "%g,", v)
		}
		r := res.Mean
		pilot := ""
		if res.Pilot >= 0 && res.Pilot != res.Point {
			pilot = fmt.Sprintf("%d", res.Pilot)
		}
		forkAt := ""
		if res.ForkedSeeds > 0 {
			forkAt = fmt.Sprintf("%.3f", res.MeanForkAt/sim.Day)
		}
		dom := ""
		if res.Pruned {
			dom = fmt.Sprintf("%d", res.DominatedBy)
		}
		fmt.Fprintf(w, "%.5f,%.7f,%.5f,%.5f,%d,%d,%s,%s,%v,%s\n",
			r.NormalizedCost(), r.Unavailability(),
			r.ForcedPerHour(), r.PlannedReversePerHour(), r.Migrations.Total(),
			res.SeedsRun, pilot, forkAt, res.Pruned, dom)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells = %d simulated + %d shared + %d forked + %d pruned (%d configs cut) in %v (%.0f cells/s)\n",
		sum.Cells, sum.Simulated, sum.Shared, sum.Forked, sum.PrunedCells, sum.PrunedConfigs,
		sum.Elapsed.Round(time.Millisecond), sum.CellsPerSec())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
