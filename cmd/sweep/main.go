// Command sweep runs a parameter sweep over one scheduler knob and prints
// CSV rows (value, normalized cost, unavailability, forced/hr, migrations)
// suitable for plotting.
//
// Usage:
//
//	sweep -knob bid -values 1.5,2,3,4
//	sweep -knob tau -values 1,3,10,30 -days 30 -seeds 5
//	sweep -knob hysteresis -values 0,0.05,0.15,0.4
//	sweep -knob lambda -values 0,0.5,1,2
//
// It can also run any registered experiment (the same table cmd/paperbench
// and the HTTP API serve) and print its CSV series:
//
//	sweep -experiment fleet -seeds 2 -days 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"spothost/internal/cloud"
	"spothost/internal/experiments"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/runpool"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

func main() {
	knob := flag.String("knob", "bid", "bid | tau | hysteresis | lambda")
	valuesF := flag.String("values", "", "comma-separated knob values")
	region := flag.String("region", "us-east-1a", "home region")
	typeF := flag.String("type", "small", "home instance type")
	days := flag.Float64("days", 30, "horizon in days")
	seedsN := flag.Int("seeds", 3, "seeds to average over")
	fleet := flag.Int("vms", 0, "fleet size for multi-market knobs (default 4 for hysteresis/lambda)")
	parallel := flag.Int("parallel", 0, "worker count for (value, seed) cells; 0 means GOMAXPROCS")
	experiment := flag.String("experiment", "", "run a registered experiment by name instead of a knob sweep")
	traceF := flag.String("trace", "", "write a run trace of every simulation cell to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (Perfetto trace_event JSON) | jsonl")
	flag.Parse()

	var col *trace.Collector
	if *traceF != "" {
		col = trace.NewCollector()
	}

	if *experiment != "" {
		runExperiment(*experiment, *seedsN, *days, *parallel, col)
		writeTrace(col, *traceF, *traceFormat)
		return
	}

	values, err := parseValues(*valuesF, *knob)
	if err != nil {
		fatal(err)
	}
	var seeds []int64
	for i := 0; i < *seedsN; i++ {
		seeds = append(seeds, int64(23*(i+1)))
	}
	mcfg := market.DefaultConfig(0)
	if h := *days * sim.Day; h > mcfg.Horizon {
		mcfg.Horizon = h
	}
	home := market.ID{Region: market.Region(*region), Type: market.InstanceType(*typeF)}

	// Flatten the sweep into independent (value, seed) simulation cells so
	// one pool keeps every worker busy across the whole sweep; rows print
	// in value order once all cells finish.
	cfgs := make([]sched.Config, len(values))
	for i, v := range values {
		cfg, err := buildConfig(*knob, v, home, *fleet)
		if err != nil {
			fatal(err)
		}
		cfgs[i] = cfg
	}
	// Ctrl-C (or SIGTERM) cancels every in-flight cell and exits promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ns := len(seeds)
	cache := market.SharedCache()
	cells := make([]int, len(values)*ns)
	reports, err := runpool.MapCtx(ctx, *parallel, cells, func(ctx context.Context, i, _ int) (metrics.Report, error) {
		mc := mcfg
		mc.Seed = seeds[i%ns]
		set, err := cache.Generate(mc)
		if err != nil {
			return metrics.Report{}, err
		}
		cp := cloud.DefaultParams(0)
		cp.Seed = seeds[i%ns]
		rec := col.Run(fmt.Sprintf("%s=%g/seed%d", *knob, values[i/ns], seeds[i%ns]))
		rep, err := sched.RunTracedCtx(ctx, set, cp, cfgs[i/ns], *days*sim.Day, rec)
		if err == nil {
			col.Done(rec)
		}
		return rep, err
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("knob,value,normalized_cost,unavailability,forced_per_hr,voluntary_per_hr,migrations\n")
	for i, v := range values {
		r := metrics.Average(reports[i*ns : (i+1)*ns])
		fmt.Printf("%s,%g,%.5f,%.7f,%.5f,%.5f,%d\n",
			*knob, v, r.NormalizedCost(), r.Unavailability(),
			r.ForcedPerHour(), r.PlannedReversePerHour(), r.Migrations.Total())
	}
	writeTrace(col, *traceF, *traceFormat)
}

// writeTrace exports the collected trace, if tracing was requested.
func writeTrace(col *trace.Collector, path, format string) {
	if col == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := col.Export(f, format); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// runExperiment executes one entry from the experiments registry — the
// same single table behind cmd/paperbench and the HTTP API, so a newly
// registered experiment is immediately sweepable — and prints its CSV
// series when it exports one, its rendered table otherwise.
func runExperiment(name string, seedsN int, days float64, parallel int, col *trace.Collector) {
	entry, ok := experiments.Find(name)
	if !ok {
		var names []string
		for _, e := range experiments.All() {
			names = append(names, e.Name)
		}
		fatal(fmt.Errorf("unknown experiment %q; registered: %s", name, strings.Join(names, ", ")))
	}
	opts := experiments.Defaults()
	if seedsN > 0 && seedsN <= 16 {
		opts.Seeds = opts.Seeds[:0]
		for i := 0; i < seedsN; i++ {
			opts.Seeds = append(opts.Seeds, int64(23*(i+1)))
		}
	}
	if days > 0 {
		opts.Horizon = days * sim.Day
		opts.Market.Horizon = opts.Horizon
	}
	opts.Parallel = parallel
	opts.Trace = col.Scope(name)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx
	res, err := entry.Run(opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	if exp, ok := res.(experiments.CSVExporter); ok {
		fmt.Print(exp.CSV())
		return
	}
	fmt.Println(res.Render())
}

// parseValues parses the -values list, with per-knob defaults.
func parseValues(s, knob string) ([]float64, error) {
	if s == "" {
		switch knob {
		case "bid":
			return []float64{1.5, 2, 3, 4}, nil
		case "tau":
			return []float64{1, 3, 10, 30}, nil
		case "hysteresis":
			return []float64{0, 0.05, 0.15, 0.4}, nil
		case "lambda":
			return []float64{0, 0.5, 1, 2}, nil
		}
		return nil, fmt.Errorf("unknown knob %q", knob)
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// buildConfig applies the knob value to a scheduler config.
func buildConfig(knob string, v float64, home market.ID, fleet int) (sched.Config, error) {
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		return cfg, err
	}
	multiMarket := func() {
		if fleet <= 0 {
			fleet = 4
		}
		cfg.Service = sched.ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: fleet,
		}
		cfg.Markets = nil
		for _, ts := range market.DefaultTypes() {
			cfg.Markets = append(cfg.Markets, market.ID{Region: home.Region, Type: ts.Name})
		}
	}
	switch knob {
	case "bid":
		cfg.BidMultiple = v
	case "tau":
		cfg.VMParams.CheckpointBound = v
	case "hysteresis":
		multiMarket()
		cfg.Hysteresis = v
	case "lambda":
		multiMarket()
		cfg.StabilityPenalty = v
	default:
		return cfg, fmt.Errorf("unknown knob %q", knob)
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
