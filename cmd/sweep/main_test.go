package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spothost/internal/market"
	"spothost/internal/sched"
)

func TestParseValues(t *testing.T) {
	got, err := parseValues("1.5, 2,3", "bid")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1.5, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseValues = %v, want %v", got, want)
	}

	// Empty -values falls back to per-knob defaults.
	for knob, want := range map[string][]float64{
		"bid":        {1.5, 2, 3, 4},
		"tau":        {1, 3, 10, 30},
		"hysteresis": {0, 0.05, 0.15, 0.4},
		"lambda":     {0, 0.5, 1, 2},
	} {
		got, err := parseValues("", knob)
		if err != nil {
			t.Fatalf("%s: %v", knob, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s defaults = %v, want %v", knob, got, want)
		}
	}
	if _, err := parseValues("", "warp"); err == nil {
		t.Error("parseValues accepted an unknown knob with no values")
	}
	if _, err := parseValues("1,two", "bid"); err == nil {
		t.Error("parseValues accepted a non-numeric value")
	}
}

func TestBuildConfig(t *testing.T) {
	home := market.ID{Region: "us-east-1a", Type: "small"}

	cfg, err := buildConfig("bid", 2.5, home, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BidMultiple != 2.5 || len(cfg.Markets) != 1 || cfg.Markets[0] != home {
		t.Fatalf("bid config: %+v", cfg)
	}

	cfg, err = buildConfig("tau", 10, home, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.VMParams.CheckpointBound != 10 {
		t.Fatalf("tau not applied: %+v", cfg.VMParams)
	}

	// hysteresis/lambda switch to the multi-market fleet; -vms overrides
	// the default fleet of 4.
	cfg, err = buildConfig("hysteresis", 0.15, home, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hysteresis != 0.15 || cfg.Service.Count != 4 || len(cfg.Markets) != len(market.DefaultTypes()) {
		t.Fatalf("hysteresis config: %+v", cfg)
	}
	cfg, err = buildConfig("lambda", 1, home, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StabilityPenalty != 1 || cfg.Service.Count != 6 {
		t.Fatalf("lambda config: %+v", cfg)
	}
	if cfg.Bidding != sched.Proactive {
		t.Fatalf("bidding = %v, want proactive", cfg.Bidding)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("built config does not validate: %v", err)
	}

	if _, err := buildConfig("warp", 1, home, 0); err == nil {
		t.Error("buildConfig accepted an unknown knob")
	}
	if _, err := buildConfig("bid", 1, home, 0); err == nil {
		t.Error("buildConfig accepted BidMultiple=1 (proactive needs >1)")
	}
}

func TestRunGridCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var out strings.Builder
	err := runGrid(context.Background(), &out, gridOpts{
		Grid:      "bid=2,4,5",
		Region:    "us-east-1a",
		Type:      "small",
		Days:      2,
		Seeds:     1,
		WarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), out.String())
	}
	wantHeader := "bid,normalized_cost,unavailability,forced_per_hr,voluntary_per_hr,migrations,seeds,pilot,fork_at,pruned,dominated_by"
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	for i, row := range lines[1:] {
		fields := strings.Split(row, ",")
		if len(fields) != 11 {
			t.Fatalf("row %d has %d fields: %q", i, len(fields), row)
		}
		// No forking requested: fork_at stays empty on every row.
		if fields[8] != "" {
			t.Fatalf("row %d has fork_at without -fork: %q", i, row)
		}
		if fields[9] != "false" || fields[10] != "" {
			t.Fatalf("row %d unexpectedly pruned: %q", i, row)
		}
	}

	// Grid parse errors surface instead of printing anything.
	if err := runGrid(context.Background(), &out, gridOpts{Grid: "warp=1", Seeds: 1}); err == nil {
		t.Fatal("runGrid accepted an unknown knob")
	}
}

// TestExperimentTraceAndObsTogether: in -experiment mode, -trace and -obs
// compose on one invocation — both export files appear, and the telemetry
// prefix comes from -obs-out. Exec-level so the flag wiring itself is
// under test.
func TestExperimentTraceAndObsTogether(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "sweep")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.json")
	obsPrefix := filepath.Join(dir, "run")

	cmd := exec.Command(bin, "-experiment", "fleet", "-seeds", "1", "-days", "2",
		"-trace", tracePath, "-obs", "-obs-out", obsPrefix)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("sweep -experiment fleet -trace -obs: %v\n%s", err, out)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
	cb, err := os.ReadFile(obsPrefix + "-timeline.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cb), ",cost_dollars,") {
		t.Fatalf("timeline CSV missing cost series:\n%.500s", cb)
	}
	lb, err := os.ReadFile(obsPrefix + "-ledger.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lb), `"action":"spot"`) {
		t.Fatalf("ledger has no spot decisions:\n%.500s", lb)
	}

	// Knob mode has no fleet cells: -obs is refused with a warning, not a
	// silent empty export.
	warn := exec.Command(bin, "-knob", "bid", "-values", "2", "-days", "1", "-seeds", "1", "-obs")
	out, err := warn.CombinedOutput()
	if err != nil {
		t.Fatalf("knob sweep with -obs failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "-obs applies to -experiment runs only") {
		t.Fatalf("missing -obs warning in knob mode:\n%s", out)
	}
}
