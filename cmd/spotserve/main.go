// Command spotserve exposes the spothost simulators over HTTP (see
// internal/httpapi for the routes):
//
//	spotserve -addr :8080
//	curl localhost:8080/v1/experiments
//	curl -X POST localhost:8080/v1/experiments/figure7 -d '{"quick":true}'
//	curl -X POST localhost:8080/v1/scenario -d @study.json
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"spothost/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:    *addr,
		Handler: httpapi.Handler(),
		// Experiments at full fidelity run for tens of seconds.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 10 * time.Minute,
	}
	fmt.Printf("spotserve listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
