// Command spotserve exposes the spothost simulators over HTTP (see
// internal/httpapi for the routes):
//
//	spotserve -addr :8080 -max-concurrent 2 -run-timeout 5m -shards 4 -max-fleets 10000 -tenant-quota 1000
//	curl localhost:8080/v1/experiments
//	curl -X POST localhost:8080/v1/experiments/figure7 -d '{"quick":true}'
//	curl -X POST localhost:8080/v1/scenario -d @study.json
//	curl -X POST localhost:8080/v1/tenants/acme/fleets -d '{"name":"web","days":30,"fleet":{"strategy":"diversified"}}'
//	curl localhost:8080/v1/tenants/acme/fleets/web/stream
//	curl localhost:8080/metrics
//
// The server is admission-controlled (-max-concurrent runs at once, 429
// beyond that), bounds each run with -run-timeout, and shuts down
// gracefully on SIGINT/SIGTERM: in-flight requests get -grace to finish
// (their simulations are canceled through the request contexts when the
// listener closes), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spothost/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", httpapi.DefaultMaxConcurrent,
		"maximum simulation runs executing at once; excess requests get 429")
	runTimeout := flag.Duration("run-timeout", 10*time.Minute,
		"per-run execution deadline (0 disables); exceeded runs are canceled and get 504")
	grace := flag.Duration("grace", 15*time.Second,
		"shutdown grace period for in-flight requests on SIGINT/SIGTERM")
	pprofAddr := flag.String("pprof-addr", "",
		"listen address for net/http/pprof profiling endpoints (e.g. localhost:6060); empty disables")
	shards := flag.Int("shards", 0,
		"control-plane shard goroutines advancing registered fleets (0 = one per CPU)")
	maxFleets := flag.Int("max-fleets", 0,
		"registered-fleet cap across all tenants (0 = control-plane default)")
	tenantQuota := flag.Int("tenant-quota", 0,
		"registered-fleet cap per tenant (0 = control-plane default)")
	flag.Parse()

	logger := log.New(os.Stderr, "spotserve ", log.LstdFlags)
	api := httpapi.New(httpapi.Config{
		MaxConcurrent: *maxConcurrent,
		RunTimeout:    *runTimeout,
		Logger:        logger,
		Shards:        *shards,
		MaxFleets:     *maxFleets,
		TenantQuota:   *tenantQuota,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
		// Experiments at full fidelity run for tens of seconds.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 15 * time.Minute,
		IdleTimeout:  60 * time.Second,
	}

	// Profiling stays off the service port and off by default: the pprof
	// handlers go on their own mux and listener, so enabling them never
	// exposes debug endpoints to API clients.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("spotserve listening on %s (max-concurrent=%d run-timeout=%s)\n",
		*addr, *maxConcurrent, *runTimeout)

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Printf("signal received, draining for up to %s", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("shutdown: %v", err)
		_ = srv.Close()
	}
	api.Close() // stop the control plane's shard runtime
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	logger.Printf("shutdown complete")
}
