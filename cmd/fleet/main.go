// Command fleet runs the replicated-fleet experiment: an SLO-autoscaled
// replica fleet spread across spot markets, comparing the three
// allocation strategies (lowest-price, diversified, stability) on cost,
// capacity shortfall and revocation blast radius.
//
// Usage:
//
//	fleet [-quick] [-seeds 5] [-days 30] [-parallel 8] [-json] [-csv out.csv]
//	      [-catalog default -anchor small]
//	      [-trace run.json] [-obs -obs-out fleet]
//
// -trace and -obs compose: the former records wall-ordered spans and
// histograms, the latter simulated-time timelines and the decision
// ledger; either or both may be enabled on one run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"spothost/internal/catalog"
	"spothost/internal/experiments"
	"spothost/internal/market"
	"spothost/internal/obs"
	"spothost/internal/runpool"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

// strategyJSON is one strategy's machine-readable outcome.
type strategyJSON struct {
	Strategy                string  `json:"strategy"`
	NormalizedCost          float64 `json:"normalized_cost"`
	CapacityShortfall       float64 `json:"capacity_shortfall"`
	PeakTarget              int     `json:"peak_target"`
	SpotFraction            float64 `json:"spot_fraction"`
	OnDemandFallbacks       int     `json:"on_demand_fallbacks"`
	ReverseReplacements     int     `json:"reverse_replacements"`
	ReplicasLost            int     `json:"replicas_lost"`
	WorstSimultaneousLoss   int     `json:"worst_simultaneous_loss"`
	MeanMaxSimultaneousLoss float64 `json:"mean_max_simultaneous_loss"`
	LossVariance            float64 `json:"loss_variance"`
	LossEvents              int     `json:"loss_events"`
}

// outputJSON is the -json document.
type outputJSON struct {
	Days       float64        `json:"days"`
	Seeds      []int64        `json:"seeds"`
	Markets    []string       `json:"markets"`
	WindowHrs  float64        `json:"loss_window_hours"`
	Strategies []strategyJSON `json:"strategies"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced seeds and horizon for a fast smoke run")
	seeds := flag.Int("seeds", 0, "override the number of seeds (1-16)")
	days := flag.Float64("days", 0, "override the horizon in days")
	parallel := flag.Int("parallel", 0, "worker count for (strategy, seed) cells; 0 means GOMAXPROCS")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON document instead of the table")
	csvPath := flag.String("csv", "", "also write the per-strategy CSV to this path")
	traceF := flag.String("trace", "", "write a run trace of every (strategy, seed) cell to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (Perfetto trace_event JSON) | jsonl")
	catalogF := flag.String("catalog", "", `instance catalog: "" (single-type legacy fleet), legacy, or default (ten heterogeneous types)`)
	anchorF := flag.String("anchor", "small", "capacity anchor instance type; replicas must be at least this powerful (with -catalog)")
	obsOn := flag.Bool("obs", false, "collect simulated-time telemetry (timelines, decision ledger, SLO alerts) for every cell")
	obsOut := flag.String("obs-out", "fleet-obs", "output prefix for -obs: writes <prefix>-timeline.csv and <prefix>-ledger.ndjson")
	flag.Parse()

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *seeds > 0 && *seeds <= 16 {
		opts.Seeds = opts.Seeds[:0]
		for i := 0; i < *seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(11*(i+1)))
		}
	}
	if *days > 0 {
		opts.Horizon = *days * sim.Day
		opts.Market.Horizon = opts.Horizon
	}
	opts.Parallel = *parallel
	if opts.Parallel <= 0 {
		opts.Parallel = runpool.DefaultWorkers()
	}
	switch *catalogF {
	case "":
	case "legacy":
		opts.Catalog = catalog.Legacy()
	case "default":
		opts.Catalog = catalog.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown -catalog %q (want legacy or default)\n", *catalogF)
		os.Exit(2)
	}
	if opts.Catalog != nil {
		opts.Anchor = market.InstanceType(*anchorF)
		if _, ok := opts.Catalog.Lookup(opts.Anchor); !ok {
			fmt.Fprintf(os.Stderr, "anchor type %q is not in catalog %q\n", *anchorF, *catalogF)
			os.Exit(2)
		}
	}

	// Ctrl-C (or SIGTERM) cancels every in-flight simulation cell; the
	// run exits 130 instead of finishing the grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx

	var col *trace.Collector
	if *traceF != "" {
		col = trace.NewCollector()
		opts.Trace = col
	}
	var ocol *obs.Collector
	if *obsOn {
		ocol = obs.NewCollector(obs.Config{})
		opts.Obs = ocol
	}

	res, err := experiments.Fleet(opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if col != nil {
		f, err := os.Create(*traceF)
		if err == nil {
			err = col.Export(f, *traceFormat)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceF)
	}
	if ocol != nil {
		if err := ocol.WriteFiles(*obsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s-timeline.csv and %s-ledger.ndjson\n", *obsOut, *obsOut)
	}

	if !*asJSON {
		fmt.Println(res.Render())
		return
	}
	out := outputJSON{
		Days:      float64(opts.Horizon) / sim.Day,
		Seeds:     opts.Seeds,
		WindowHrs: float64(res.Window) / sim.Hour,
	}
	for _, id := range res.Markets {
		out.Markets = append(out.Markets, id.String())
	}
	for _, row := range res.Rows {
		m := row.Mean
		spot := 0.0
		if tot := m.SpotSeconds + m.OnDemandSeconds; tot > 0 {
			spot = m.SpotSeconds / tot
		}
		out.Strategies = append(out.Strategies, strategyJSON{
			Strategy:                row.Strategy,
			NormalizedCost:          m.NormalizedCost(),
			CapacityShortfall:       m.CapacityShortfall(),
			PeakTarget:              m.PeakTarget,
			SpotFraction:            spot,
			OnDemandFallbacks:       m.OnDemandFallbacks,
			ReverseReplacements:     m.ReverseReplacements,
			ReplicasLost:            m.ReplicasLost,
			WorstSimultaneousLoss:   row.WorstSimultaneousLoss,
			MeanMaxSimultaneousLoss: row.MeanMaxSimultaneousLoss,
			LossVariance:            row.LossVariance,
			LossEvents:              row.LossEvents,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
