package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildFleet compiles the fleet command into a temp dir and returns the
// binary path. Exec-level tests need the real signal handling and exit
// codes, which in-process tests cannot observe.
func buildFleet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fleet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestTraceAndObsTogether: -trace and -obs are independent switches and
// must compose on one run — both export files appear and are well-formed.
func TestTraceAndObsTogether(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildFleet(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.json")
	obsPrefix := filepath.Join(dir, "run")

	cmd := exec.Command(bin, "-quick", "-seeds", "1", "-days", "2",
		"-trace", tracePath, "-obs", "-obs-out", obsPrefix)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("fleet -trace -obs: %v\n%s", err, out)
	}

	// The trace file is a Chrome trace_event JSON array with real events.
	tb, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(tb, &events); err != nil || len(events) == 0 {
		t.Fatalf("trace file not a trace_event array (%v, %d events)", err, len(events))
	}

	// The timeline CSV has the schema header and the core cost series.
	cb, err := os.ReadFile(obsPrefix + "-timeline.csv")
	if err != nil {
		t.Fatal(err)
	}
	csv := string(cb)
	if !strings.HasPrefix(csv, "label,series,kind,t0_seconds,width_seconds,value\n") {
		t.Fatalf("timeline CSV header wrong:\n%.200s", csv)
	}
	if !strings.Contains(csv, ",cost_dollars,") {
		t.Fatalf("timeline CSV missing cost series:\n%.500s", csv)
	}

	// Every ledger line is a schema-stamped decision record.
	lf, err := os.Open(obsPrefix + "-ledger.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lines := 0
	sc := bufio.NewScanner(lf)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var d struct {
			Schema int    `json:"schema"`
			Action string `json:"action"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil || d.Schema == 0 || d.Action == "" {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("ledger is empty for a run that launched instances")
	}
}

// TestInterruptExit130: Ctrl-C mid-run must exit 130 — including with the
// telemetry collectors attached, whose export paths run after the
// cancelled experiment returns.
func TestInterruptExit130(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildFleet(t)
	dir := t.TempDir()

	cmd := exec.Command(bin, "-seeds", "8", "-days", "365",
		"-trace", filepath.Join(dir, "run.json"),
		"-obs", "-obs-out", filepath.Join(dir, "run"))
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the process time to install its signal handler and enter the
	// grid before interrupting it.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatal("fleet finished a 365-day 8-seed grid before the interrupt; make the run heavier")
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("exit after SIGINT = %v, want code 130", err)
	}
}
