// Command advise answers "which policy and mechanism should host my
// service?": it sweeps the policy x mechanism matrix over synthetic or
// replayed prices, filters by an availability target, prices downtime
// under your revenue model, and ranks by net benefit.
//
// Usage:
//
//	advise -region us-east-1a -type small -revenue-rps 40 -revenue-per-req 0.001
//	advise -target 0.999 -days 30 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"spothost/internal/advisor"
	"spothost/internal/cloud"
	"spothost/internal/econ"
	"spothost/internal/market"
	"spothost/internal/sim"
	"spothost/internal/slo"
)

func main() {
	region := flag.String("region", "us-east-1a", "home region")
	typeF := flag.String("type", "small", "home instance type")
	days := flag.Float64("days", 30, "evaluation horizon in days")
	seed := flag.Int64("seed", 42, "price universe seed")
	target := flag.Float64("target", 0.9999, "availability objective (0 disables)")
	rps := flag.Float64("revenue-rps", 0, "served requests per second")
	perReq := flag.Float64("revenue-per-req", 0, "revenue per request, dollars")
	degraded := flag.Float64("degraded-loss", 0.3, "revenue fraction lost while degraded")
	flag.Parse()

	mcfg := market.DefaultConfig(*seed)
	mcfg.Horizon = *days * sim.Day
	set, err := market.Generate(mcfg)
	if err != nil {
		fatal(err)
	}
	rec, err := advisor.Advise(set, cloud.DefaultParams(*seed), advisor.Request{
		Home:   market.ID{Region: market.Region(*region), Type: market.InstanceType(*typeF)},
		Target: slo.Target(*target),
		Revenue: econ.RevenueModel{
			RequestsPerSecond:  *rps,
			RevenuePerRequest:  *perReq,
			DegradedLossFactor: *degraded,
		},
		Horizon: *days * sim.Day,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(rec.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
