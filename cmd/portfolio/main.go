// Command portfolio runs a declarative JSON hosting scenario (see
// internal/scenario for the schema): a set of services with policies,
// mechanisms, market lists, lifetimes and optional revenue models, over
// synthetic or replayed prices.
//
// Usage:
//
//	portfolio -scenario study.json
//	portfolio -example > study.json   # print a starter document
package main

import (
	"flag"
	"fmt"
	"os"

	"spothost/internal/scenario"
)

const exampleDoc = `{
  "seed": 42,
  "days": 30,
  "services": [
    {
      "name": "shop",
      "region": "us-east-1a", "type": "medium",
      "policy": "proactive", "mechanism": "ckpt-lr-live",
      "revenue": {"requests_per_second": 40, "revenue_per_request": 0.001,
                  "degraded_loss_factor": 0.3}
    },
    {
      "name": "api",
      "region": "us-west-1a", "type": "small",
      "policy": "reactive", "mechanism": "ckpt-lr"
    },
    {
      "name": "batch",
      "region": "us-east-1b", "type": "large",
      "policy": "pure-spot", "mechanism": "ckpt-lr"
    },
    {
      "name": "surge",
      "region": "us-east-1a", "type": "small",
      "policy": "proactive", "vms": 4,
      "markets": ["us-east-1a/small", "us-east-1a/medium",
                  "us-east-1a/large", "us-east-1a/xlarge"],
      "start_hour": 240, "stop_hour": 480
    }
  ]
}
`

func main() {
	path := flag.String("scenario", "", "scenario JSON file")
	example := flag.Bool("example", false, "print an example scenario and exit")
	flag.Parse()

	if *example {
		fmt.Print(exampleDoc)
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "usage: portfolio -scenario study.json (or -example)")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	sc, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
