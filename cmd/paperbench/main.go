// Command paperbench regenerates every table and figure from the paper's
// evaluation and prints them in order.
//
// Usage:
//
//	paperbench [-quick] [-only figure6] [-seeds 5] [-days 30] [-parallel 8]
//	paperbench -only figure6 -trace figure6.json          # Perfetto-loadable run trace
//	paperbench -trace all.jsonl -trace-format jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"spothost/internal/experiments"
	"spothost/internal/market"
	"spothost/internal/runpool"
	"spothost/internal/sim"
	"spothost/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "reduced seeds and horizon for a fast smoke run")
	only := flag.String("only", "", "run a single experiment by name (e.g. figure6)")
	seeds := flag.Int("seeds", 0, "override the number of seeds (1-16)")
	days := flag.Float64("days", 0, "override the horizon in days")
	parallel := flag.Int("parallel", 0, "worker count for (config, seed) cells; 0 means GOMAXPROCS")
	list := flag.Bool("list", false, "list experiment names and exit")
	csvDir := flag.String("csv", "", "also write <experiment>.csv files into this directory")
	traceF := flag.String("trace", "", "write a run trace of every simulation cell to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (Perfetto trace_event JSON) | jsonl")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.Name)
		}
		return
	}

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *seeds > 0 && *seeds <= 16 {
		opts.Seeds = opts.Seeds[:0]
		for i := 0; i < *seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(11*(i+1)))
		}
	}
	if *days > 0 {
		opts.Horizon = *days * sim.Day
		opts.Market.Horizon = opts.Horizon
	}
	opts.Parallel = *parallel
	if opts.Parallel <= 0 {
		opts.Parallel = runpool.DefaultWorkers()
	}
	// Ctrl-C (or SIGTERM) cancels every in-flight simulation cell and the
	// run exits promptly instead of finishing the grid; a second signal
	// kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx
	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		s := market.SharedCache().Stats()
		fmt.Fprintf(os.Stderr, "market cache: %d hits, %d misses (%d universes)\n",
			s.Hits, s.Misses, s.Universes)
	}()

	var col *trace.Collector
	if *traceF != "" {
		col = trace.NewCollector()
	}
	writeTrace := func() {
		if col == nil {
			return
		}
		f, err := os.Create(*traceF)
		if err != nil {
			fail(err)
		}
		if err := col.Export(f, *traceFormat); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceF)
	}

	writeCSV := func(name string, res experiments.Renderer) {
		if *csvDir == "" {
			return
		}
		exp, ok := res.(experiments.CSVExporter)
		if !ok {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(exp.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	// runOne executes one experiment under a per-experiment trace scope and
	// logs its wall-clock phases (simulate, render) to stderr.
	runOne := func(e experiments.Entry, banner bool) {
		opts.Trace = col.Scope(e.Name)
		ph := trace.NewPhases()
		res, err := e.Run(opts)
		if err != nil {
			fail(err)
		}
		ph.Mark("sim")
		text := res.Render()
		ph.Mark("report")
		if banner {
			fmt.Printf("=== %s ===\n%s\n", e.Name, text)
		} else {
			fmt.Println(text)
		}
		writeCSV(e.Name, res)
		fmt.Fprintf(os.Stderr, "timing %s: %s\n", e.Name, ph)
	}

	if *only != "" {
		e, ok := experiments.Find(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *only)
			os.Exit(2)
		}
		runOne(e, false)
		writeTrace()
		return
	}
	for _, e := range experiments.All() {
		runOne(e, true)
	}
	writeTrace()
}
