// Command spotsim hosts a simulated always-on service on the cloud spot
// market under a chosen bidding policy and migration mechanism, and prints
// the cost/availability report.
//
// Usage:
//
//	spotsim -policy proactive -mechanism ckpt-lr-live -type small -days 30
//	spotsim -policy proactive -markets us-east-1a/small,us-east-1a/large -vms 4
//	spotsim -traces prices.csv -policy reactive
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/replay"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/trace"
	"spothost/internal/vm"
)

func parsePolicy(s string) (sched.Bidding, error) {
	switch s {
	case "on-demand", "on-demand-only", "baseline":
		return sched.OnDemandOnly, nil
	case "reactive":
		return sched.Reactive, nil
	case "proactive":
		return sched.Proactive, nil
	case "pure-spot", "spot":
		return sched.PureSpot, nil
	}
	return 0, fmt.Errorf("unknown policy %q (on-demand|reactive|proactive|pure-spot)", s)
}

func parseMechanism(s string) (vm.Mechanism, error) {
	switch s {
	case "ckpt":
		return vm.CKPT, nil
	case "ckpt-lr":
		return vm.CKPTLazy, nil
	case "ckpt-live":
		return vm.CKPTLive, nil
	case "ckpt-lr-live":
		return vm.CKPTLazyLive, nil
	case "naive":
		return vm.Naive, nil
	}
	return 0, fmt.Errorf("unknown mechanism %q (ckpt|ckpt-lr|ckpt-live|ckpt-lr-live|naive)", s)
}

func parseMarkets(s string) ([]market.ID, error) {
	if s == "" {
		return nil, nil
	}
	var out []market.ID
	for _, part := range strings.Split(s, ",") {
		bits := strings.Split(strings.TrimSpace(part), "/")
		if len(bits) != 2 || bits[0] == "" || bits[1] == "" {
			return nil, fmt.Errorf("bad market %q, want region/type", part)
		}
		out = append(out, market.ID{Region: market.Region(bits[0]), Type: market.InstanceType(bits[1])})
	}
	return out, nil
}

func main() {
	policyF := flag.String("policy", "proactive", "bidding policy")
	mechF := flag.String("mechanism", "ckpt-lr-live", "migration mechanism")
	regionF := flag.String("region", "us-east-1a", "home region")
	typeF := flag.String("type", "small", "home instance type")
	marketsF := flag.String("markets", "", "candidate spot markets as region/type,... (default: the home market)")
	vmsF := flag.Int("vms", 0, "host a fleet of N unit VMs instead of one market-sized VM")
	daysF := flag.Float64("days", 30, "horizon in days")
	seedsF := flag.Int("seeds", 3, "number of synthetic-universe seeds to average over")
	tracesF := flag.String("traces", "", "trace file to replay instead of synthetic prices")
	formatF := flag.String("format", "csv", "trace file format: csv (tracegen), aws-json (describe-spot-price-history), aws-legacy (ec2-api-tools)")
	productF := flag.String("product", "Linux/UNIX", "product filter for AWS trace formats")
	pessimistF := flag.Bool("pessimistic", false, "use worst-case migration constants")
	verboseF := flag.Bool("v", false, "print each seed's report")
	traceOutF := flag.String("trace", "", "write a run trace to this file")
	traceFormatF := flag.String("trace-format", "chrome", "trace export format: chrome (Perfetto trace_event JSON) | jsonl")
	flag.Parse()

	ph := trace.NewPhases()
	var col *trace.Collector
	if *traceOutF != "" {
		col = trace.NewCollector()
	}

	policy, err := parsePolicy(*policyF)
	if err != nil {
		fatal(err)
	}
	mech, err := parseMechanism(*mechF)
	if err != nil {
		fatal(err)
	}
	extraMarkets, err := parseMarkets(*marketsF)
	if err != nil {
		fatal(err)
	}

	home := market.ID{Region: market.Region(*regionF), Type: market.InstanceType(*typeF)}
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		fatal(err)
	}
	cfg.Bidding = policy
	cfg.Mechanism = mech
	if *pessimistF {
		cfg.VMParams = vm.PessimisticParams()
	}
	if len(extraMarkets) > 0 {
		cfg.Markets = extraMarkets
	}
	if *vmsF > 0 {
		cfg.Service = sched.ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: *vmsF,
		}
	}

	horizon := *daysF * sim.Day
	var reports []metrics.Report
	if *tracesF != "" {
		f, err := os.Open(*tracesF)
		if err != nil {
			fatal(err)
		}
		var set *market.Set
		switch *formatF {
		case "csv":
			set, err = market.ReadCSV(f)
		case "aws-json":
			set, err = replay.LoadJSON(f, replay.Options{Product: *productF})
		case "aws-legacy":
			set, err = replay.LoadLegacy(f, replay.Options{Product: *productF})
		default:
			err = fmt.Errorf("unknown trace format %q", *formatF)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		ph.Mark("load")
		rec := col.Run("replay")
		r, err := sched.RunTracedCtx(context.Background(), set, cloud.DefaultParams(1), cfg, horizon, rec)
		if err != nil {
			fatal(err)
		}
		col.Done(rec)
		reports = append(reports, r)
	} else {
		mcfg := market.DefaultConfig(0)
		if horizon > mcfg.Horizon {
			mcfg.Horizon = horizon
		}
		var seeds []int64
		for i := 0; i < *seedsF; i++ {
			seeds = append(seeds, int64(17*(i+1)))
		}
		ph.Mark("load")
		reports, err = sched.RunSeedsTracedCtx(context.Background(), mcfg, cloud.DefaultParams(0), cfg, horizon, seeds, 0, col)
		if err != nil {
			fatal(err)
		}
	}
	ph.Mark("sim")

	if *verboseF {
		for i, r := range reports {
			fmt.Printf("--- run %d ---\n%s\n", i+1, r)
		}
	}
	avg := metrics.Average(reports)
	fmt.Printf("=== average over %d run(s) ===\n%s\n", len(reports), avg)
	if col != nil {
		f, err := os.Create(*traceOutF)
		if err != nil {
			fatal(err)
		}
		if err := col.Export(f, *traceFormatF); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOutF)
	}
	ph.Mark("report")
	fmt.Fprintf(os.Stderr, "timing: %s\n", ph)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
