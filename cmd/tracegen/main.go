// Command tracegen generates synthetic spot-price traces in the repo's CSV
// format (compatible with rebased AWS spot price history dumps).
//
// Usage:
//
//	tracegen -seed 42 -days 30 -out prices.csv
//	tracegen -seed 1 -days 7 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"spothost/internal/market"
	"spothost/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed")
	days := flag.Float64("days", 30, "trace length in days")
	out := flag.String("out", "", "output CSV path (default stdout)")
	summary := flag.Bool("summary", false, "print per-market statistics instead of CSV")
	flag.Parse()

	cfg := market.DefaultConfig(*seed)
	cfg.Horizon = *days * sim.Day
	set, err := market.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *summary {
		fmt.Printf("%-22s %9s %9s %9s %9s %8s %8s\n",
			"market", "on-demand", "mean", "max", "stddev", ">od", ">4xod")
		for _, id := range set.IDs() {
			s := market.Summarize(set, id)
			fmt.Printf("%-22s %9.3f %9.4f %9.3f %9.3f %7.2f%% %7.3f%%\n",
				id, s.OnDemand, s.Mean, s.Max, s.StdDev,
				100*s.FracAboveOD, 100*s.FracAbove4xOD)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := market.WriteCSV(w, set); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
