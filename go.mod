module spothost

go 1.22
