// SLO audit: host a portfolio of three services (a shop, an API, and a
// batch tier) on one simulated cloud for a quarter, then audit every
// service's monthly availability against the paper's four-nines
// requirement — including error-budget burn and the downtime episode
// distribution.
//
// Run with: go run ./examples/sloaudit
package main

import (
	"fmt"
	"log"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/slo"
	"spothost/internal/vm"
)

func main() {
	const days = 90
	mcfg := market.DefaultConfig(2026)
	mcfg.Horizon = days * sim.Day
	prices, err := market.Generate(mcfg)
	if err != nil {
		log.Fatal(err)
	}

	p := sched.NewPortfolio(prices, cloud.DefaultParams(2026))

	add := func(name string, home market.ID, b sched.Bidding, mech vm.Mechanism) {
		cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
		if err != nil {
			log.Fatal(err)
		}
		cfg.Bidding = b
		cfg.Mechanism = mech
		if err := p.Add(name, cfg); err != nil {
			log.Fatal(err)
		}
	}
	add("shop", market.ID{Region: "us-east-1a", Type: "medium"}, sched.Proactive, vm.CKPTLazyLive)
	add("api", market.ID{Region: "us-west-1a", Type: "small"}, sched.Reactive, vm.CKPTLazy)
	add("batch", market.ID{Region: "us-east-1b", Type: "large"}, sched.PureSpot, vm.CKPTLazy)

	if err := p.Run(days * sim.Day); err != nil {
		log.Fatal(err)
	}

	target := slo.FourNines
	fmt.Printf("Quarterly SLO audit against %s (budget %.1f min/month)\n\n",
		target, target.MonthlyBudget()/sim.Minute)
	for _, name := range p.Services() {
		rep, err := p.Report(name)
		if err != nil {
			log.Fatal(err)
		}
		tracker := slo.FromLog(rep.DowntimeLog)
		fmt.Printf("%s  (policy %s, cost %.0f%% of on-demand)\n",
			name, rep.Policy, 100*rep.NormalizedCost())
		for _, w := range tracker.Windows(target, 30*sim.Day, days*sim.Day) {
			status := "OK"
			if !w.Compliant {
				status = "VIOLATED"
			}
			fmt.Printf("  month %d: availability %.4f%%  downtime %5.1f min  budget burn %5.1f%%  %s\n",
				int(w.Start/(30*sim.Day))+1, 100*w.Availability,
				w.Downtime/sim.Minute, 100*w.BudgetBurn, status)
		}
		d := tracker.EpisodeDistribution()
		fmt.Printf("  episodes: %d (mean %.1fs, p95 %.1fs, max %.1fs)\n\n",
			d.Count, float64(d.Mean), float64(d.P95), float64(d.Max))
	}

	tot := p.Totals()
	fmt.Printf("portfolio: %d services, consolidated cost %.0f%% of on-demand, worst availability %s (%.4f%%)\n",
		tot.Services, 100*tot.NormalizedCost(), tot.WorstService,
		100*(1-tot.WorstUnavailability))
	fmt.Println("\nTakeaway: the proactive+migration services hold four nines at ~20%")
	fmt.Println("of the on-demand price; the pure-spot batch tier blows its budget in")
	fmt.Println("every month it hits a price spike — exactly the paper's Table 3.")
}
