// Diurnal elasticity: the paper's introduction motivates clouds with
// "just-in-time allocation of capacity to handle peak workloads". This
// example hosts a steady base fleet around the clock plus a surge shard
// that only exists during the daily eight-hour peak — all of it on the
// spot machinery — and compares the bill against an on-demand fleet
// provisioned for the peak 24/7 (the traditional way).
//
// Run with: go run ./examples/diurnal
package main

import (
	"fmt"
	"log"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

const days = 14

func main() {
	mcfg := market.DefaultConfig(777)
	mcfg.Horizon = days * sim.Day
	prices, err := market.Generate(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	p := sched.NewPortfolio(prices, cloud.DefaultParams(777))

	home := market.ID{Region: "us-east-1a", Type: "small"}
	fleet := func(count int) sched.Config {
		cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
		if err != nil {
			log.Fatal(err)
		}
		cfg.Service = sched.ServiceSpec{
			VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
			Count: count,
		}
		return cfg
	}

	// Base: 2 unit VMs around the clock.
	if err := p.Add("base", fleet(2)); err != nil {
		log.Fatal(err)
	}
	// Surge: 4 more unit VMs during the 10:00-18:00 peak, every day.
	for d := 0; d < days; d++ {
		name := fmt.Sprintf("surge-day%02d", d+1)
		start := sim.Time(d)*sim.Day + 10*sim.Hour
		stop := sim.Time(d)*sim.Day + 18*sim.Hour
		if err := p.AddAt(start, name, fleet(4)); err != nil {
			log.Fatal(err)
		}
		if err := p.StopAt(stop, name); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Run(days * sim.Day); err != nil {
		log.Fatal(err)
	}

	tot := p.Totals()
	base, _ := p.Report("base")

	// The traditional alternative: own (or rent on-demand) the PEAK fleet
	// of 6 unit VMs for the whole two weeks.
	odPrice := prices.OnDemand(home)
	peakProvisioned := 6 * odPrice * 24 * days

	fmt.Printf("steady base fleet:   cost $%.2f (%.0f%% of its on-demand baseline)\n",
		base.Cost, 100*base.NormalizedCost())
	surgeCost := tot.Cost - base.Cost
	fmt.Printf("%d daily surge shards: cost $%.2f total\n", days, surgeCost)
	fmt.Printf("spot-elastic total:  $%.2f\n", tot.Cost)
	fmt.Printf("peak-provisioned on-demand fleet (6 VMs 24/7): $%.2f\n", peakProvisioned)
	fmt.Printf("\ncombined savings: %.0f%% — elasticity stacks on top of the paper's\n",
		100*(1-tot.Cost/peakProvisioned))
	fmt.Printf("spot discount (mean unavailability %.4f%%, worst shard %.4f%%)\n",
		100*tot.MeanUnavailability, 100*tot.WorstUnavailability)
}
