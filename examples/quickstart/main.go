// Quickstart: host one always-on service VM on the spot market with the
// paper's best configuration (proactive bidding, live migration + bounded
// checkpointing with lazy restore) and compare against the on-demand
// baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/sched"
	"spothost/internal/sim"
)

func main() {
	// 1. A month of synthetic spot prices for the default four-region,
	//    four-size universe (swap in market.ReadCSV to replay real AWS
	//    price history).
	prices, err := market.Generate(market.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The hosting configuration: one VM sized to a small server in
	//    us-east-1a, proactive bidding at 4x the on-demand price.
	home := market.ID{Region: "us-east-1a", Type: "small"}
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the cloud scheduler for 30 days of virtual time.
	report, err := sched.Run(prices, cloud.DefaultParams(42), cfg, 30*sim.Day)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The verdict.
	fmt.Println(report)
	fmt.Printf("\nhosting cost is %.0f%% of the on-demand baseline (the paper reports 17-33%%)\n",
		100*report.NormalizedCost())
	fmt.Printf("service availability: %.4f%% (four-nines target: 99.99%%)\n",
		100*(1-report.Unavailability()))
}
