// Replay AWS spot price history: feed the scheduler real (here: bundled
// sample) `aws ec2 describe-spot-price-history` output — the exact data
// source the paper seeded its simulations with — and compare the hosting
// policies on it.
//
// To use your own data:
//
//	aws ec2 describe-spot-price-history \
//	  --instance-types m1.small --product-descriptions "Linux/UNIX" \
//	  --start-time 2015-02-01 --end-time 2015-03-01 > history.json
//	go run ./cmd/spotsim -traces history.json -format aws-json
//
// Run with: go run ./examples/replayaws
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/replay"
	"spothost/internal/sched"
)

// sampleHistory synthesizes two weeks of plausible m1.small history in the
// AWS JSON format — stand in your own dump here.
func sampleHistory() string {
	var b strings.Builder
	b.WriteString(`{"SpotPriceHistory":[`)
	base := time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)
	first := true
	emit := func(at time.Time, price float64) {
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, `{"AvailabilityZone":"us-east-1a","InstanceType":"m1.small",`+
			`"ProductDescription":"Linux/UNIX","SpotPrice":"%.4f","Timestamp":"%s"}`,
			price, at.Format(time.RFC3339))
	}
	for day := 0; day < 14; day++ {
		d := base.AddDate(0, 0, day)
		emit(d, 0.0071)
		emit(d.Add(9*time.Hour), 0.0085)
		// Every third day the market runs hot for two hours.
		if day%3 == 1 {
			emit(d.Add(13*time.Hour), 0.0920)
			emit(d.Add(15*time.Hour), 0.0079)
		}
		// Day 7 has a violent spike past any permissible bid.
		if day == 7 {
			emit(d.Add(20*time.Hour), 0.4100)
			emit(d.Add(21*time.Hour), 0.0074)
		}
	}
	b.WriteString(`]}`)
	return b.String()
}

func main() {
	prices, err := replay.LoadJSON(strings.NewReader(sampleHistory()),
		replay.Options{Product: "Linux/UNIX"})
	if err != nil {
		log.Fatal(err)
	}
	home := market.ID{Region: "us-east-1a", Type: "small"}
	fmt.Printf("replaying %d markets over %.1f days of history\n\n",
		len(prices.IDs()), prices.Horizon()/86400)

	fmt.Printf("%-12s %9s %12s %9s %s\n", "policy", "cost", "unavail", "downtime", "migrations (F/P/R)")
	for _, b := range []sched.Bidding{sched.OnDemandOnly, sched.Reactive, sched.Proactive, sched.PureSpot} {
		cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
		if err != nil {
			log.Fatal(err)
		}
		cfg.Bidding = b
		r, err := sched.Run(prices, cloud.DefaultParams(1), cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.1f%% %11.4f%% %8.0fs %d/%d/%d\n",
			b, 100*r.NormalizedCost(), 100*r.Unavailability(), r.DowntimeSeconds,
			r.Migrations.Forced, r.Migrations.Planned, r.Migrations.Reverse)
	}
	fmt.Println("\nthe day-7 spike (> 4x on-demand) forces even the proactive policy to")
	fmt.Println("migrate under the two-minute warning; the every-third-day warm spells")
	fmt.Println("become planned hour-boundary migrations instead.")
}
