// TPC-W overhead study: should an e-shop hosted on nested VMs serve its
// own images, or push them to a CDN? Reproduces the Section-6 trade-off:
// nested virtualization is free for I/O-bound service but costs up to 50%
// for CPU-bound page generation — which feeds back into how much capacity
// (and therefore money) spot hosting really saves.
//
// Run with: go run ./examples/tpcw
package main

import (
	"fmt"
	"log"

	"spothost/internal/tpcw"
	"spothost/internal/vm"
)

func main() {
	fmt.Println("TPC-W ordering mix (50% browse / 50% order), native vs nested VM")
	for _, withImages := range []bool{true, false} {
		label := "images served by our VMs (I/O-bound)"
		if !withImages {
			label = "images on a CDN (CPU-bound)"
		}
		fmt.Printf("\n-- %s --\n", label)
		fmt.Printf("%6s %14s %14s %8s\n", "EBs", "native (ms)", "nested (ms)", "ratio")
		for _, ebs := range []int{100, 200, 300, 400} {
			nat, err := tpcw.Run(tpcw.DefaultConfig(ebs, withImages, false, 1))
			if err != nil {
				log.Fatal(err)
			}
			nst, err := tpcw.Run(tpcw.DefaultConfig(ebs, withImages, true, 1))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d %14.0f %14.0f %7.2fx\n",
				ebs, nat.MeanResponseMs, nst.MeanResponseMs,
				nst.MeanResponseMs/nat.MeanResponseMs)
		}
	}

	ov := vm.DefaultOverhead()
	fmt.Println("\nEffective nested-VM capacity by workload CPU share:")
	for _, share := range []float64{0, 0.25, 0.5, 0.75, 1} {
		fmt.Printf("  cpu share %.0f%%  -> %.0f%% of native capacity\n",
			100*share, 100*ov.EffectiveCapacityFactor(share))
	}
	fmt.Println("\nTakeaway: serve static bytes from the nested VMs freely, but")
	fmt.Println("provision extra capacity (or CDN offload) for CPU-heavy tiers;")
	fmt.Println("at worst the paper's 17-33% hosting cost doubles, still well")
	fmt.Println("below the on-demand baseline.")
}
