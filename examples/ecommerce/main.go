// E-commerce scenario: an always-on shop front (the paper's motivating
// workload) must hold four nines of availability — at most ~4.3 minutes of
// downtime per month. This example compares every migration-mechanism
// combination and both bidding algorithms over the same month of spot
// prices, and reports which configurations meet the availability bar and
// at what cost.
//
// Run with: go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"spothost/internal/cloud"
	"spothost/internal/econ"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

// fourNines is the paper's availability requirement: unavailability of at
// most one basis point (0.01%).
const fourNines = 0.0001

func main() {
	mcfg := market.DefaultConfig(0)
	home := market.ID{Region: "us-east-1a", Type: "medium"} // the shop's server size
	seeds := []int64{101, 202, 303}

	fmt.Println("E-commerce hosting study: four-nines availability on spot servers")
	fmt.Printf("market %s, %d seeds x 30 days\n\n", home, len(seeds))
	fmt.Printf("%-10s %-15s %9s %13s %9s %s\n",
		"bidding", "mechanism", "cost", "unavail", "down/mo", "meets 99.99%?")

	for _, bidding := range []sched.Bidding{sched.Reactive, sched.Proactive} {
		for _, mech := range vm.Mechanisms() {
			cfg, err := sched.DefaultConfig(home, mcfg.Types)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Bidding = bidding
			cfg.Mechanism = mech
			// A busy shop dirties memory faster than the default.
			cfg.Service.VM.DirtyRateMBps = 12

			reports, err := sched.RunSeeds(mcfg, cloud.DefaultParams(0), cfg, 30*sim.Day, seeds)
			if err != nil {
				log.Fatal(err)
			}
			avg := metrics.Average(reports)
			downPerMonth := avg.Unavailability() * 30 * 24 * 60 // minutes
			verdict := "NO"
			if avg.Unavailability() <= fourNines {
				verdict = "yes"
			}
			fmt.Printf("%-10s %-15s %8.1f%% %12.4f%% %7.1fm %s\n",
				bidding, mech, 100*avg.NormalizedCost(),
				100*avg.Unavailability(), downPerMonth, verdict)
		}
	}

	fmt.Println("\nReading the table: reactive bidding suffers more forced migrations, so")
	fmt.Println("only the strongest mechanisms rescue it; proactive bidding with")
	fmt.Println("checkpointing + lazy restore (and live migration for voluntary moves)")
	fmt.Println("meets four nines at roughly one-fifth of the on-demand cost — the")
	fmt.Println("paper's headline result.")

	// Price the best configuration in business terms: does the saving
	// survive the revenue lost during migrations?
	bestCfg, err := sched.DefaultConfig(home, mcfg.Types)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := sched.RunSeeds(mcfg, cloud.DefaultParams(0), bestCfg, 30*sim.Day, seeds)
	if err != nil {
		log.Fatal(err)
	}
	best := metrics.Average(reports)
	shopTraffic := econ.RevenueModel{
		RequestsPerSecond:  40,    // a mid-size shop
		RevenuePerRequest:  0.001, // $144/hr of revenue
		DegradedLossFactor: 0.3,
	}
	a, err := econ.Analyze(shopTraffic, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbusiness view (proactive, CKPT LR + Live, $%.0f/hr revenue): %s\n",
		shopTraffic.RevenuePerSecond()*3600, a)
	fmt.Printf("the shop could tolerate %.2fx more downtime before spot hosting stopped paying\n",
		a.HeadroomFactor)
}
