// Multi-region scenario: a fleet of four unit nested VMs that the
// scheduler may pack onto any server size (small..xlarge) in one or two
// regions, chasing the cheapest per-unit spot price. Demonstrates the
// Sec. 4.4/4.5 results: more markets => lower cost, with the caveat that
// chasing volatile markets can cost availability.
//
// Run with: go run ./examples/multiregion
package main

import (
	"fmt"
	"log"

	"spothost/internal/cloud"
	"spothost/internal/market"
	"spothost/internal/metrics"
	"spothost/internal/sched"
	"spothost/internal/sim"
	"spothost/internal/vm"
)

func run(name string, markets []market.ID, home market.ID, seeds []int64) metrics.Report {
	cfg, err := sched.DefaultConfig(home, market.DefaultTypes())
	if err != nil {
		log.Fatal(err)
	}
	cfg.Service = sched.ServiceSpec{
		VM:    vm.Spec{MemoryGB: 1.4, DirtyRateMBps: 8, DiskGB: 4, Units: 1},
		Count: 4,
	}
	cfg.Markets = markets
	reports, err := sched.RunSeeds(market.DefaultConfig(0), cloud.DefaultParams(0),
		cfg, 30*sim.Day, seeds)
	if err != nil {
		log.Fatal(err)
	}
	avg := metrics.Average(reports)
	fmt.Printf("%-28s cost=%5.1f%%  unavail=%.4f%%  migrations: %d planned, %d reverse, %d cross-region\n",
		name, 100*avg.NormalizedCost(), 100*avg.Unavailability(),
		avg.Migrations.Planned, avg.Migrations.Reverse, avg.Migrations.CrossRegion)
	return avg
}

func main() {
	seeds := []int64{5, 6, 7}
	home := market.ID{Region: "us-east-1a", Type: "small"}

	east := []market.ID{}
	for _, ty := range []market.InstanceType{"small", "medium", "large", "xlarge"} {
		east = append(east, market.ID{Region: "us-east-1a", Type: ty})
	}
	eu := []market.ID{}
	for _, ty := range []market.InstanceType{"small", "medium", "large", "xlarge"} {
		eu = append(eu, market.ID{Region: "eu-west-1a", Type: ty})
	}

	fmt.Println("Fleet of 4 unit VMs, proactive bidding, 3 seeds x 30 days")
	fmt.Println()
	single := run("single market (small only)", east[:1], home, seeds)
	multi := run("multi-market (us-east-1a)", east, home, seeds)
	region := run("multi-region (east + eu)", append(append([]market.ID{}, east...), eu...), home, seeds)

	fmt.Println()
	fmt.Printf("multi-market saves %.0f%% over single-market;", 100*(1-multi.NormalizedCost()/single.NormalizedCost()))
	fmt.Printf(" adding a second region changes cost by %+.0f%%\n",
		100*(region.NormalizedCost()/multi.NormalizedCost()-1))
	fmt.Println("(the paper: multi-market cuts 8-52%; multi-region cuts more but can")
	fmt.Println("hurt availability when the cheaper region is also the more volatile one)")
}
